package cache

// Claim files: the cross-process (cross-node) execution locks of the
// cluster's dedup protocol. When several pmsynthd nodes share one store
// directory, a node about to execute a sweep first claims its
// fingerprint here; a node that finds a live foreign claim forwards the
// submission to the holder instead of executing a duplicate. A claim is
// a tiny file created atomically (O_CREATE|O_EXCL), so exactly one node
// wins any race; it records the holder's node id and, once known, the
// holder's job id, so losers can answer their clients with a routable
// handle onto the one execution.
//
// Claims are leases, not locks: a holder that crashes leaves its file
// behind, so every read applies a TTL — a claim whose file is older
// than the TTL is stale and may be stolen. Stealing is itself
// race-free: the stale file is first renamed aside (exactly one
// concurrent renamer of the same path succeeds; the others see ENOENT
// and retry the normal acquire), then the winner creates its own claim.
// Holders refresh the lease mtime while executing and release (unlink)
// it when the result has been persisted or the execution failed.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"
)

// claimSuffix names claim files inside the claims directory.
const claimSuffix = ".claim"

// Claim describes the holder of a fingerprint's execution lease.
type Claim struct {
	// Node is the holder's cluster node id.
	Node string
	// JobID is the holder's local job id, once the holder has admitted
	// the job; empty in the window between acquisition and admission.
	JobID string
	// Age is how long ago the lease was last refreshed.
	Age time.Duration
}

// ClaimStats counts claim-protocol outcomes.
type ClaimStats struct {
	// Acquired counts leases this store won.
	Acquired int64
	// Lost counts acquire attempts that found a live foreign claim.
	Lost int64
	// Stolen counts stale leases this store took over.
	Stolen int64
	// Released counts leases explicitly released.
	Released int64
}

// ClaimStore manages the claim files of one shared directory. Safe for
// concurrent use by any number of goroutines and processes.
type ClaimStore struct {
	dir string
	ttl time.Duration

	acquired atomic.Int64
	lost     atomic.Int64
	stolen   atomic.Int64
	released atomic.Int64
}

// DefaultClaimTTL is the lease duration when none is configured: long
// enough that a healthy holder never expires mid-execution (holders
// refresh on progress), short enough that a crashed node's fingerprints
// become executable again without operator action.
const DefaultClaimTTL = 2 * time.Minute

// OpenClaimStore opens (creating if needed) the claim directory. ttl <= 0
// means DefaultClaimTTL.
func OpenClaimStore(dir string, ttl time.Duration) (*ClaimStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: claim dir is empty")
	}
	if ttl <= 0 {
		ttl = DefaultClaimTTL
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: claim dir: %w", err)
	}
	return &ClaimStore{dir: dir, ttl: ttl}, nil
}

// TTL returns the configured lease duration.
func (c *ClaimStore) TTL() time.Duration { return c.ttl }

// path maps a claim key to its file. Keys are fingerprints (hex plus a
// short version prefix); reuse the store's hashing so arbitrary keys
// stay path-safe.
func (c *ClaimStore) path(key string) string {
	return filepath.Join(c.dir, strings.TrimSuffix(fileName(key), storeSuffix)+claimSuffix)
}

// encodeClaim renders the claim file body: node id and job id, one per
// line (the job line may be empty).
func encodeClaim(node, jobID string) []byte {
	return []byte(node + "\n" + jobID + "\n")
}

// readClaim parses a claim file, returning the holder and the file's
// age. Unreadable or malformed files read as absent — like the result
// store, the claim layer degrades rather than fails; a vanished claim
// simply lets the caller race for a fresh one.
func (c *ClaimStore) readClaim(path string) (Claim, bool) {
	info, err := os.Lstat(path)
	if err != nil {
		return Claim{}, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Claim{}, false
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) < 2 || lines[0] == "" {
		return Claim{}, false
	}
	return Claim{Node: lines[0], JobID: lines[1], Age: time.Since(info.ModTime())}, true
}

// Acquire tries to take the execution lease for key on behalf of node.
// Outcomes:
//
//   - acquired=true: this node holds the lease and must Release it when
//     the execution has been persisted or abandoned.
//   - acquired=false with holder.Node != "": a live claim exists (the
//     holder may be this node itself on a re-entrant submission); the
//     caller should dedup onto the holder.
//
// A stale claim (older than the TTL) is stolen: renamed aside and
// replaced by this node's fresh claim. Exactly one concurrent stealer
// wins the rename; losers observe the winner's fresh claim.
func (c *ClaimStore) Acquire(key, node string) (acquired bool, holder Claim) {
	path := c.path(key)
	for attempt := 0; attempt < 3; attempt++ {
		if c.tryCreate(path, node) {
			c.acquired.Add(1)
			return true, Claim{Node: node}
		}
		cl, ok := c.readClaim(path)
		if !ok {
			// The file vanished (released or stolen) between the failed
			// create and the read: retry the create.
			continue
		}
		if cl.Age <= c.ttl {
			c.lost.Add(1)
			return false, cl
		}
		// Stale: the holder crashed or hung past its lease. Steal by
		// renaming the corpse aside; only one concurrent renamer of the
		// same inode succeeds, everyone else loops and sees the winner's
		// fresh claim on the next read.
		stale := path + fmt.Sprintf(".stale-%d-%d", os.Getpid(), time.Now().UnixNano())
		if err := os.Rename(path, stale); err == nil {
			os.Remove(stale)
			c.stolen.Add(1)
		}
	}
	// Pathological churn: report whatever claim is visible now.
	if cl, ok := c.readClaim(path); ok {
		c.lost.Add(1)
		return false, cl
	}
	return false, Claim{}
}

// tryCreate atomically creates the claim file; false when it exists.
func (c *ClaimStore) tryCreate(path, node string) bool {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return false
	}
	_, werr := f.Write(encodeClaim(node, ""))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		// A half-written claim would read as malformed (absent) forever;
		// remove it so the next acquire can win cleanly.
		os.Remove(path)
		return false
	}
	return true
}

// SetJob records the holder's job id on an already-acquired claim, so
// nodes that lose the race can hand their clients a routable job handle.
// It rewrites the file atomically (temp + rename) and refreshes the
// lease. Only the current holder should call it; a claim already
// released or stolen is left alone, so a fast execution that finishes
// before its admission thread gets here cannot resurrect the lease.
// (The verify-then-rename window is benign: a resurrected claim only
// redirects peers to this node, whose dedup index still answers.)
func (c *ClaimStore) SetJob(key, node, jobID string) {
	path := c.path(key)
	if cl, ok := c.readClaim(path); !ok || cl.Node != node {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-claim-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(encodeClaim(node, jobID))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
	}
}

// Refresh extends the lease by bumping the claim file's mtime. Holders
// call it on execution progress so long sweeps never expire mid-run.
func (c *ClaimStore) Refresh(key string) {
	now := time.Now()
	os.Chtimes(c.path(key), now, now)
}

// Release drops the lease. Safe to call when the claim is already gone
// (stolen after this holder stalled past its TTL); the unlink is
// unconditional because by protocol only the holder releases, and a
// stolen claim's new holder re-creates the file under the same name —
// to avoid unlinking a thief's fresh claim, Release verifies the holder
// first.
func (c *ClaimStore) Release(key, node string) {
	path := c.path(key)
	if cl, ok := c.readClaim(path); ok && cl.Node != node {
		return // stolen while we stalled: the lease is no longer ours
	}
	if err := os.Remove(path); err == nil {
		c.released.Add(1)
	}
}

// Get reports the current claim for key, if any.
func (c *ClaimStore) Get(key string) (Claim, bool) {
	return c.readClaim(c.path(key))
}

// Stats snapshots the claim counters.
func (c *ClaimStore) Stats() ClaimStats {
	return ClaimStats{
		Acquired: c.acquired.Load(),
		Lost:     c.lost.Load(),
		Stolen:   c.stolen.Load(),
		Released: c.released.Load(),
	}
}
