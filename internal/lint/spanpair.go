package lint

// The spanpair check: telemetry hygiene, enforced everywhere in the
// module (except inside the telemetry package itself).
//
//   - Every span opened with telemetry.StartSpan must be ended: either a
//     `defer sp.End()` exists, or an `sp.End()` call appears before each
//     return that follows the StartSpan. The path analysis is lexical —
//     an End anywhere between the StartSpan and a return satisfies that
//     return — which accepts the repo's conditional-End idiom
//     (`if sp != nil { ...; sp.End() }`) and the handed-off-to-closure
//     idiom, while still firing when an End (or the defer) is deleted.
//     Ends inside nested closures count: a span legitimately ends on the
//     goroutine that finishes the work.
//   - Assigning the span result to the blank identifier is always an
//     error: a span nobody can End is a span that never ends.
//   - context.Context parameters must come first (the stdlib contract;
//     spans ride the context, so a buried ctx is a buried trace).
//   - No struct field may hold a context.Context. The two sanctioned
//     exceptions in this repo (flow.Context.Ctx, jobs.Job.ctx) carry
//     //pmlint:allow annotations explaining why; new ones must too.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func checkSpanPair(pkg *Package, cfg Config, report func(check string, pos token.Pos, format string, args ...interface{})) {
	for _, file := range pkg.Files {
		for _, fn := range functionsOf(file) {
			checkSpans(pkg, cfg, fn, report)
			checkCtxFirst(pkg, fn, report)
		}
		checkCtxFields(pkg, file, report)
	}
}

// isStartSpan reports whether call is telemetry.StartSpan from the
// configured package.
func isStartSpan(pkg *Package, cfg Config, call *ast.CallExpr) bool {
	c := resolveCall(pkg, call)
	return c.fn != nil && c.fn.Name() == "StartSpan" &&
		c.fn.Pkg() != nil && c.fn.Pkg().Path() == cfg.TelemetryPackage
}

// checkSpans enforces the StartSpan/End pairing inside one function.
func checkSpans(pkg *Package, cfg Config, fn funcBody, report func(check string, pos token.Pos, format string, args ...interface{})) {
	// Find the StartSpan assignments owned by this function (not by
	// nested literals, which are their own functions).
	type span struct {
		obj  types.Object
		name string
		pos  token.Pos
	}
	var spans []span
	walkSkippingFuncLits(fn.body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok || !isStartSpan(pkg, cfg, call) {
			return true
		}
		id, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			report(CheckSpanPair, call.Pos(), "StartSpan result discarded: a span assigned to _ can never be ended")
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		if obj != nil {
			spans = append(spans, span{obj: obj, name: id.Name, pos: call.Pos()})
		}
		return true
	})
	if len(spans) == 0 {
		return
	}

	// Collect, across the whole function including nested literals, the
	// End calls and deferred End calls per span object; and, outer-level
	// only, the return statements.
	endsOf := make(map[types.Object][]token.Pos)
	deferredEnd := make(map[types.Object]bool)
	markEnd := func(call *ast.CallExpr, deferred bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.Uses[base]
		if obj == nil {
			return
		}
		if deferred {
			deferredEnd[obj] = true
		} else {
			endsOf[obj] = append(endsOf[obj], call.Pos())
		}
	}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.DeferStmt:
			markEnd(v.Call, true)
		case *ast.CallExpr:
			markEnd(v, false)
		}
		return true
	})
	var returns []token.Pos
	walkSkippingFuncLits(fn.body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
		return true
	})

	for _, sp := range spans {
		if deferredEnd[sp.obj] {
			continue
		}
		ends := endsOf[sp.obj]
		if len(ends) == 0 {
			report(CheckSpanPair, sp.pos, "span %s is never ended: add `defer %s.End()` or an End on every path", sp.name, sp.name)
			continue
		}
		for _, ret := range returns {
			if ret <= sp.pos {
				continue
			}
			covered := false
			for _, end := range ends {
				if end > sp.pos && end <= ret {
					covered = true
					break
				}
			}
			if !covered {
				report(CheckSpanPair, ret, "return may leak span %s (started at %s): no %s.End() between the StartSpan and this return",
					sp.name, pkg.Fset.Position(sp.pos), sp.name)
			}
		}
	}
}

// checkCtxFirst enforces context.Context-first parameter order.
func checkCtxFirst(pkg *Package, fn funcBody, report func(check string, pos token.Pos, format string, args ...interface{})) {
	var ft *ast.FuncType
	switch v := fn.node.(type) {
	case *ast.FuncDecl:
		ft = v.Type
	case *ast.FuncLit:
		ft = v.Type
	}
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pkg, field.Type) && idx > 0 {
			report(CheckSpanPair, field.Pos(), "context.Context must be the first parameter")
		}
		idx += n
	}
}

// checkCtxFields flags struct fields of type context.Context. Sanctioned
// carriers annotate with //pmlint:allow spanpair <reason>.
func checkCtxFields(pkg *Package, file *ast.File, report func(check string, pos token.Pos, format string, args ...interface{})) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		for _, field := range st.Fields.List {
			if isContextType(pkg, field.Type) {
				report(CheckSpanPair, field.Pos(),
					"struct field holds a context.Context: contexts are call-scoped, not state; annotate the rare sanctioned carrier")
			}
		}
		return true
	})
}

// isContextType reports whether the type expression denotes
// context.Context.
func isContextType(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
