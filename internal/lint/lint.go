package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The check names, in the order they run.
const (
	CheckDeterminism = "determinism"
	CheckLockScope   = "lockscope"
	CheckSpanPair    = "spanpair"
	CheckDirectives  = "directives"
)

// AllChecks lists every check name in execution order. The directives
// check is last by construction: it validates the escape hatches after
// the other checks have consumed them.
func AllChecks() []string {
	return []string{CheckDeterminism, CheckLockScope, CheckSpanPair, CheckDirectives}
}

// KnownCheck reports whether name is one of the checks.
func KnownCheck(name string) bool {
	for _, c := range AllChecks() {
		if c == name {
			return true
		}
	}
	return false
}

// Finding is one diagnostic. File is relative to the module root when
// the runner knows it, so output is stable across checkouts.
type Finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col: [check] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Check, f.Message)
}

// Config parameterizes the checks. The zero value runs nothing useful;
// start from DefaultConfig.
type Config struct {
	// Checks selects which checks run; empty means all. Names must come
	// from AllChecks.
	Checks []string
	// DeterministicPackages are the import paths held to the determinism
	// contract: no escaping unsorted map iteration, no time.Now, no
	// global math/rand. Every listed path must exist in the loaded
	// module — a rename that rots this list is itself an error.
	DeterministicPackages []string
	// LockScopePackages are the import paths held to the lock-scope
	// contract: nothing matching ForbiddenUnderLock — and no dynamic
	// (client-controlled) call — may run while a sync.Mutex or RWMutex
	// is held.
	LockScopePackages []string
	// ForbiddenUnderLock names what must not be reachable under a held
	// mutex: "pkg.*" (any function or method of the package),
	// "pkg.Func", or "pkg.Type.Method".
	ForbiddenUnderLock []string
	// TelemetryPackage is the import path whose StartSpan/End pairs the
	// spanpair check enforces.
	TelemetryPackage string
}

// DefaultConfig is the repository's contract: the deterministic-path
// packages of the synthesis core, the serving-layer lock-scope packages,
// and the telemetry span API, all under module path modPath.
func DefaultConfig(modPath string) Config {
	det := []string{modPath} // the root pmsynth package
	for _, p := range []string{
		"cdfg", "sched", "alloc", "ctrl", "mutex", "power",
		"sim", "core", "vhdl", "verilog", "tables", "flow",
	} {
		det = append(det, modPath+"/internal/"+p)
	}
	return Config{
		DeterministicPackages: det,
		LockScopePackages: []string{
			modPath + "/internal/server",
			modPath + "/internal/jobs",
		},
		ForbiddenUnderLock: []string{
			modPath + ".*",                                 // Compile, Synthesize, Sweep*, Enumerate, ...
			modPath + "/internal/flow.*",                   // pipeline entry points
			modPath + "/internal/cache.Store.Get",          // disk I/O
			modPath + "/internal/cache.Store.GetCtx",       //
			modPath + "/internal/cache.Store.Put",          //
			modPath + "/internal/cache.Store.PutCtx",       //
			modPath + "/internal/cache.Cache.GetOrCompute", // runs the compute closure
		},
		TelemetryPackage: modPath + "/internal/telemetry",
	}
}

// checks validates and resolves the configured check selection.
func (c Config) checks() ([]string, error) {
	if len(c.Checks) == 0 {
		return AllChecks(), nil
	}
	seen := make(map[string]bool, len(c.Checks))
	for _, name := range c.Checks {
		if !KnownCheck(name) {
			return nil, fmt.Errorf("lint: unknown check %q (known: %s)",
				name, strings.Join(AllChecks(), ", "))
		}
		seen[name] = true
	}
	// Preserve canonical order regardless of how the selection was typed.
	var out []string
	for _, name := range AllChecks() {
		if seen[name] {
			out = append(out, name)
		}
	}
	return out, nil
}

// Runner lints loaded packages. Checks report through report(), findings
// are filtered through //pmlint:allow directives per package, and the
// final list is sorted by position.
type Runner struct {
	Loader *Loader
	Config Config
	// Root, when set, relativizes finding file paths against it.
	Root string
}

// SelfCheck verifies the configured package lists against the loaded
// module: a configured path that no longer exists means the config
// rotted (a package was renamed or moved) and is a hard error, not a
// silently narrower lint.
func (r *Runner) SelfCheck(modulePaths []string) error {
	known := make(map[string]bool, len(modulePaths))
	for _, p := range modulePaths {
		known[p] = true
	}
	var missing []string
	for _, p := range r.Config.DeterministicPackages {
		if !known[p] {
			missing = append(missing, p)
		}
	}
	for _, p := range r.Config.LockScopePackages {
		if !known[p] {
			missing = append(missing, p)
		}
	}
	if r.Config.TelemetryPackage != "" && !known[r.Config.TelemetryPackage] {
		missing = append(missing, r.Config.TelemetryPackage)
	}
	if len(missing) > 0 {
		return fmt.Errorf("lint: configured packages missing from the module (config rot): %s",
			strings.Join(missing, ", "))
	}
	return nil
}

// Lint loads and checks the given packages, returning the surviving
// findings sorted by file, line, column and check.
func (r *Runner) Lint(paths ...string) ([]Finding, error) {
	checks, err := r.Config.checks()
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, path := range paths {
		pkg, err := r.Loader.Load(path)
		if err != nil {
			return nil, err
		}
		all = append(all, r.lintPackage(pkg, checks)...)
	}
	sort.Slice(all, func(i, k int) bool {
		a, b := all[i], all[k]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	// Dedupe: a construct scanned from two angles (an immediately-invoked
	// literal, say) must not report twice.
	out := all[:0]
	for i, f := range all {
		if i == 0 || f != all[i-1] {
			out = append(out, f)
		}
	}
	return out, nil
}

// lintPackage runs the selected checks over one package and applies its
// //pmlint:allow directives.
func (r *Runner) lintPackage(pkg *Package, checks []string) []Finding {
	mk := func(check string, pos token.Pos, msg string) Finding {
		p := pkg.Fset.Position(pos)
		file := p.Filename
		if r.Root != "" {
			if rel, ok := strings.CutPrefix(file, r.Root+"/"); ok {
				file = rel
			}
		}
		return Finding{Check: check, File: file, Line: p.Line, Col: p.Column, Message: msg}
	}
	var raw []Finding
	report := func(check string, pos token.Pos, format string, args ...interface{}) {
		raw = append(raw, mk(check, pos, fmt.Sprintf(format, args...)))
	}
	runDirectives := false
	for _, check := range checks {
		switch check {
		case CheckDeterminism:
			if containsPath(r.Config.DeterministicPackages, pkg.Path) {
				checkDeterminism(pkg, report)
			}
		case CheckLockScope:
			if containsPath(r.Config.LockScopePackages, pkg.Path) {
				checkLockScope(pkg, r.Config, report)
			}
		case CheckSpanPair:
			if pkg.Path != r.Config.TelemetryPackage {
				checkSpanPair(pkg, r.Config, report)
			}
		case CheckDirectives:
			runDirectives = true
		}
	}
	return applyDirectives(pkg, raw, mk, runDirectives)
}

// containsPath reports whether list contains path.
func containsPath(list []string, path string) bool {
	for _, p := range list {
		if p == path {
			return true
		}
	}
	return false
}

// funcBody pairs a function-ish node with its body for per-function
// walks: top-level declarations and every function literal, each
// analyzed independently.
type funcBody struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
}

// functionsOf lists every function declaration and literal in the file.
func functionsOf(file *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{fn, fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{fn, fn.Body})
		}
		return true
	})
	return out
}
