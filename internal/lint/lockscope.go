package lint

// The lockscope check: the admission-pipeline invariant, statically. In
// the serving-layer packages no call that can reach compile/enumerate/
// synthesis entry points or disk I/O (the ForbiddenUnderLock patterns),
// and no dynamic call through a function value (client-controlled work:
// hooks, callbacks, job funcs), may execute while a sync.Mutex or
// sync.RWMutex is held.
//
// The approximation, documented because every static lock checker is
// one:
//
//   - Lock regions are tracked through a forward scan of each function
//     body with branch-aware held-sets: both arms of an if/switch are
//     scanned with a copy of the held-set and the fall-through states
//     union (possibly-held counts as held). `defer mu.Unlock()` holds to
//     the end of the function.
//   - Reachability of forbidden calls propagates through the
//     intra-package static call graph to a fixed point. Methods whose
//     name ends in "Locked" are scanned as if a lock were held — the
//     repo's convention for helpers that run inside a critical section.
//   - Function literals are separate analysis units: defining a closure
//     under a lock is fine (the admission pipeline does exactly that),
//     only running one is checked. Immediately-invoked literals are
//     scanned inline; literals called later through a variable are the
//     dynamic-call case at their call site.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func checkLockScope(pkg *Package, cfg Config, report func(check string, pos token.Pos, format string, args ...interface{})) {
	ls := &lockScope{pkg: pkg, cfg: cfg, report: report}
	ls.buildSummaries()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := heldSet{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				held["(caller's lock)"] = true
			}
			ls.scanStmts(fd.Body.List, held)
			// Literals not immediately invoked: their bodies are their own
			// lock scopes, starting unlocked.
			ls.scanNestedLits(fd.Body)
		}
	}
}

// heldSet maps a lock's receiver expression ("s.mu", "m.qmu") to held.
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h heldSet) union(o heldSet) heldSet {
	for k := range o {
		h[k] = true
	}
	return h
}

func (h heldSet) any() bool { return len(h) > 0 }

func (h heldSet) names() string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	// Deterministic message regardless of map order.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k] < out[k-1]; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return strings.Join(out, ", ")
}

type lockScope struct {
	pkg    *Package
	cfg    Config
	report func(check string, pos token.Pos, format string, args ...interface{})

	// reaches marks package functions that can reach a forbidden call
	// through the intra-package static call graph; via records the first
	// step of one such path for the diagnostic.
	reaches map[*types.Func]bool
	via     map[*types.Func]string
	decls   map[*types.Func]*ast.FuncDecl
}

// forbidden matches a static callee against the configured patterns.
func (ls *lockScope) forbidden(fn *types.Func) bool {
	key := funcKey(fn)
	if key == "" {
		return false
	}
	for _, pat := range ls.cfg.ForbiddenUnderLock {
		if key == pat {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, ".*"); ok {
			if rest, ok := strings.CutPrefix(key, prefix+"."); ok && !strings.Contains(rest, "/") {
				return true
			}
		}
	}
	return false
}

// buildSummaries computes the forbidden-reachability fixed point over
// the package's function declarations.
func (ls *lockScope) buildSummaries() {
	ls.reaches = make(map[*types.Func]bool)
	ls.via = make(map[*types.Func]string)
	ls.decls = make(map[*types.Func]*ast.FuncDecl)
	calls := make(map[*types.Func][]*types.Func)
	for _, file := range ls.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := ls.pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ls.decls[fn] = fd
			walkSkippingFuncLits(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				c := resolveCall(ls.pkg, call)
				if c.fn == nil {
					return true
				}
				if ls.forbidden(c.fn) {
					if !ls.reaches[fn] {
						ls.reaches[fn] = true
						ls.via[fn] = funcKey(c.fn)
					}
					return true
				}
				if c.fn.Pkg() == ls.pkg.Types {
					calls[fn] = append(calls[fn], c.fn)
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if ls.reaches[fn] {
				continue
			}
			for _, callee := range callees {
				if ls.reaches[callee] {
					ls.reaches[fn] = true
					ls.via[fn] = funcKey(callee) + " -> " + ls.via[callee]
					changed = true
					break
				}
			}
		}
	}
}

// scanNestedLits scans every function literal in n as its own unlocked
// scope (and, recursively, literals nested inside those).
func (ls *lockScope) scanNestedLits(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && m != n {
			ls.scanStmts(lit.Body.List, heldSet{})
			ls.scanNestedLits(lit.Body)
			return false
		}
		return true
	})
}

// scanStmts walks a statement list with the current held-set, returning
// the fall-through held-set and whether the list always terminates
// (returns/panics) before falling through.
func (ls *lockScope) scanStmts(stmts []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range stmts {
		var terminated bool
		held, terminated = ls.scanStmt(s, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

// scanStmt processes one statement.
func (ls *lockScope) scanStmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		return ls.scanStmts(v.List, held)
	case *ast.IfStmt:
		if v.Init != nil {
			held, _ = ls.scanStmt(v.Init, held)
		}
		ls.checkExpr(v.Cond, held)
		thenOut, thenTerm := ls.scanStmts(v.Body.List, held.clone())
		elseOut, elseTerm := held.clone(), false
		if v.Else != nil {
			elseOut, elseTerm = ls.scanStmt(v.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return thenOut.union(elseOut), false
		}
	case *ast.ForStmt:
		if v.Init != nil {
			held, _ = ls.scanStmt(v.Init, held)
		}
		if v.Cond != nil {
			ls.checkExpr(v.Cond, held)
		}
		bodyOut, _ := ls.scanStmts(v.Body.List, held.clone())
		if v.Post != nil {
			ls.scanStmt(v.Post, bodyOut.clone())
		}
		return held.union(bodyOut), false
	case *ast.RangeStmt:
		ls.checkExpr(v.X, held)
		bodyOut, _ := ls.scanStmts(v.Body.List, held.clone())
		return held.union(bodyOut), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return ls.scanBranches(s, held)
	case *ast.ReturnStmt:
		for _, e := range v.Results {
			ls.checkExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto: treat as terminating this straight-line
		// scan; the conservative union at the loop/switch level covers
		// the merged state.
		return held, true
	case *ast.DeferStmt:
		if ls.isUnlock(v.Call) {
			// defer mu.Unlock(): the lock stays held to function end —
			// leave it in the set so later calls are still checked.
			return held, false
		}
		ls.checkExpr(v.Call, held)
		return held, false
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's lock.
		return held, false
	case *ast.ExprStmt:
		return ls.mutate(v.X, held), false
	case *ast.AssignStmt:
		for _, e := range v.Rhs {
			held = ls.mutate(e, held)
		}
		for _, e := range v.Lhs {
			ls.checkExpr(e, held)
		}
		return held, false
	case *ast.LabeledStmt:
		return ls.scanStmt(v.Stmt, held)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				ls.checkExpr(e, held)
				return false
			}
			return true
		})
		return held, false
	}
	return held, false
}

// scanBranches handles switch/type-switch/select: each case scans with a
// cloned held-set; the fall-through state is the union of every
// non-terminating case (plus the entry state — a switch may match no
// case).
func (ls *lockScope) scanBranches(s ast.Stmt, held heldSet) (heldSet, bool) {
	var bodies [][]ast.Stmt
	switch v := s.(type) {
	case *ast.SwitchStmt:
		if v.Init != nil {
			held, _ = ls.scanStmt(v.Init, held)
		}
		if v.Tag != nil {
			ls.checkExpr(v.Tag, held)
		}
		for _, c := range v.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			held, _ = ls.scanStmt(v.Init, held)
		}
		for _, c := range v.Body.List {
			bodies = append(bodies, c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
	}
	out := held.clone()
	for _, body := range bodies {
		caseOut, caseTerm := ls.scanStmts(body, held.clone())
		if !caseTerm {
			out = out.union(caseOut)
		}
	}
	return out, false
}

// mutate processes an expression that may lock or unlock, updating the
// held-set, and otherwise checks its calls.
func (ls *lockScope) mutate(e ast.Expr, held heldSet) heldSet {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if name, lockExpr, ok := ls.lockOp(call); ok {
			switch name {
			case "Lock", "RLock":
				held[lockExpr] = true
			case "Unlock", "RUnlock":
				delete(held, lockExpr)
			}
			return held
		}
	}
	ls.checkExpr(e, held)
	return held
}

// lockOp recognizes mu.Lock/Unlock/RLock/RUnlock calls on sync.Mutex and
// sync.RWMutex values (including embedded ones), returning the method
// name and the receiver expression's source form.
func (ls *lockScope) lockOp(call *ast.CallExpr) (name, lockExpr string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := ls.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return fn.Name(), types.ExprString(sel.X), true
	}
	return "", "", false
}

// isUnlock reports whether call is an Unlock/RUnlock.
func (ls *lockScope) isUnlock(call *ast.CallExpr) bool {
	name, _, ok := ls.lockOp(call)
	return ok && (name == "Unlock" || name == "RUnlock")
}

// checkExpr reports forbidden or dynamic calls inside e, given the
// current held-set. Nested function literals are skipped — unless
// immediately invoked, in which case the literal body is scanned inline
// with the current held-set.
func (ls *lockScope) checkExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	if _, ok := ast.Unparen(e).(*ast.FuncLit); ok {
		// Assigning or passing a literal defines a closure without running
		// it; scanNestedLits analyzes the body as its own scope.
		return
	}
	walkSkippingFuncLits(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			ls.scanStmts(lit.Body.List, held.clone())
			return false
		}
		if _, _, isLockOp := ls.lockOp(call); isLockOp {
			return true // handled by mutate where it matters
		}
		if !held.any() {
			return true
		}
		c := resolveCall(ls.pkg, call)
		switch {
		case c.fn != nil && ls.forbidden(c.fn):
			ls.report(CheckLockScope, call.Pos(),
				"%s called while holding %s; no client-controlled work under a mutex", funcKey(c.fn), held.names())
		case c.fn != nil && ls.reaches[c.fn]:
			ls.report(CheckLockScope, call.Pos(),
				"%s can reach %s while holding %s; no client-controlled work under a mutex",
				c.fn.Name(), ls.via[c.fn], held.names())
		case c.dynamic:
			ls.report(CheckLockScope, call.Pos(),
				"dynamic call through %s while holding %s; function values are client-controlled work under a mutex",
				types.ExprString(call.Fun), held.names())
		}
		return true
	})
}
