package lint

// Package loading. pmlint must stay dependency-free (the CI cache keys on
// the module having no go.sum), so the loader is built purely on the
// standard library: go/build discovers the module's package directories,
// go/parser parses them, and go/types checks them with a two-tier
// importer — module-local import paths resolve through this loader
// itself (so the whole module is analyzed from source, test files
// excluded), everything else falls back to the stdlib "source" importer,
// which type-checks the standard library from $GOROOT/src. Cgo is
// disabled on the build context so cgo-optional packages (net, os/user)
// resolve through their pure-Go fallbacks everywhere CI runs.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package with everything a check
// needs: the syntax, the type information and the file set for positions.
type Package struct {
	// Path is the package's import path ("repro/internal/sched").
	Path string
	// Dir is the directory the sources were read from ("" for in-memory
	// packages registered with AddSource).
	Dir string
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's resolutions for the files.
	Info *types.Info
	// Fset positions all of Files.
	Fset *token.FileSet
}

// Loader loads and memoizes type-checked packages. Module-local packages
// (registered by AddModule or AddSource) are parsed and checked by the
// loader itself; all other import paths — the standard library — resolve
// through the stdlib source importer. A Loader is not safe for
// concurrent use.
type Loader struct {
	fset     *token.FileSet
	dirs     map[string]string            // import path -> on-disk directory
	srcs     map[string]map[string]string // import path -> file name -> source
	pkgs     map[string]*Package
	loading  map[string]bool // cycle detection
	fallback types.ImporterFrom
}

// disableCgo forces the pure-Go view of the standard library exactly
// once; the stdlib source importer shares build.Default.
var disableCgo sync.Once

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	disableCgo.Do(func() { build.Default.CgoEnabled = false })
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		dirs:     make(map[string]string),
		srcs:     make(map[string]map[string]string),
		pkgs:     make(map[string]*Package),
		loading:  make(map[string]bool),
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Fset returns the loader's file set (shared by every loaded package).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// AddSource registers an in-memory package under the given import path.
// Tests use it to lint fixture sources — including mutated variants —
// without touching disk.
func (l *Loader) AddSource(path string, files map[string]string) {
	l.srcs[path] = files
}

// AddDir registers one on-disk directory under the given import path.
func (l *Loader) AddDir(path, dir string) {
	l.dirs[path] = dir
}

// AddModule walks the module rooted at root (its go.mod names the module
// path), registering every package directory found. Directories named
// testdata or vendor, and hidden directories, are skipped — the same
// pruning the go tool applies. It returns the module path and the sorted
// import paths discovered.
func (l *Loader) AddModule(root string) (modPath string, paths []string, err error) {
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(gomod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return "", nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if !hasGoSource(p) {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[ip] = p
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return "", nil, fmt.Errorf("lint: walking module: %w", err)
	}
	sort.Strings(paths)
	return modPath, paths, nil
}

// hasGoSource reports whether dir directly contains at least one
// non-test .go file.
func hasGoSource(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// Load returns the type-checked package for a registered import path,
// loading it (and its module-local dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	_, inMem := l.srcs[path]
	if _, onDisk := l.dirs[path]; !onDisk && !inMem {
		return nil, fmt.Errorf("lint: package %q is not part of the loaded module", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, dir, err := l.parse(path)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, Fset: l.fset}
	l.pkgs[path] = p
	return p, nil
}

// parse reads and parses the package's non-test sources, in file-name
// order so positions (and therefore findings) are deterministic.
func (l *Loader) parse(path string) (files []*ast.File, dir string, err error) {
	const mode = parser.ParseComments | parser.SkipObjectResolution
	if srcs, ok := l.srcs[path]; ok {
		names := make([]string, 0, len(srcs))
		for name := range srcs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(l.fset, name, srcs[name], mode)
			if err != nil {
				return nil, "", fmt.Errorf("lint: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		return files, "", nil
	}
	dir = l.dirs[path]
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, "", fmt.Errorf("lint: scanning %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, "", fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	return files, dir, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load
// through this loader, everything else through the stdlib source
// importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	_, inMem := l.srcs[path]
	if _, onDisk := l.dirs[path]; onDisk || inMem {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.fallback.ImportFrom(path, srcDir, mode)
}
