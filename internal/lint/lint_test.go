package lint

import (
	"strings"
	"testing"
)

func TestFindingString(t *testing.T) {
	f := Finding{Check: "determinism", File: "a/b.go", Line: 3, Col: 7, Message: "m"}
	if got, want := f.String(), "a/b.go:3:7: [determinism] m"; got != want {
		t.Fatalf("String: got %q, want %q", got, want)
	}
}

func TestKnownCheck(t *testing.T) {
	for _, c := range AllChecks() {
		if !KnownCheck(c) {
			t.Errorf("KnownCheck(%q) = false", c)
		}
	}
	if KnownCheck("bogus") {
		t.Error(`KnownCheck("bogus") = true`)
	}
}

func TestConfigChecksValidation(t *testing.T) {
	if _, err := (Config{Checks: []string{"bogus"}}).checks(); err == nil {
		t.Error("unknown check accepted")
	}
	got, err := (Config{Checks: []string{CheckSpanPair, CheckDeterminism}}).checks()
	if err != nil {
		t.Fatalf("checks: %v", err)
	}
	// Selection order must not matter: canonical execution order wins.
	if len(got) != 2 || got[0] != CheckDeterminism || got[1] != CheckSpanPair {
		t.Fatalf("checks: got %v, want canonical order", got)
	}
	all, err := (Config{}).checks()
	if err != nil || len(all) != len(AllChecks()) {
		t.Fatalf("empty selection: got %v, %v", all, err)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig("m")
	mustContain := func(list []string, want string) {
		t.Helper()
		if !containsPath(list, want) {
			t.Errorf("DefaultConfig missing %q in %v", want, list)
		}
	}
	mustContain(cfg.DeterministicPackages, "m")
	mustContain(cfg.DeterministicPackages, "m/internal/sched")
	mustContain(cfg.DeterministicPackages, "m/internal/flow")
	mustContain(cfg.LockScopePackages, "m/internal/server")
	mustContain(cfg.LockScopePackages, "m/internal/jobs")
	mustContain(cfg.ForbiddenUnderLock, "m.*")
	mustContain(cfg.ForbiddenUnderLock, "m/internal/cache.Cache.GetOrCompute")
	if cfg.TelemetryPackage != "m/internal/telemetry" {
		t.Errorf("TelemetryPackage = %q", cfg.TelemetryPackage)
	}
}

func TestSelfCheck(t *testing.T) {
	r := &Runner{Config: Config{
		DeterministicPackages: []string{"a", "gone"},
		LockScopePackages:     []string{"b"},
		TelemetryPackage:      "tel",
	}}
	err := r.SelfCheck([]string{"a", "b", "tel"})
	if err == nil || !strings.Contains(err.Error(), "gone") {
		t.Fatalf("SelfCheck with a rotted path: err = %v", err)
	}
	r.Config.DeterministicPackages = []string{"a"}
	if err := r.SelfCheck([]string{"a", "b", "tel"}); err != nil {
		t.Fatalf("SelfCheck with a valid config: %v", err)
	}
}

// TestRunnerRootRelativize: findings under Root come out relative, and
// directives keep suppressing against the relativized names.
func TestRunnerRootRelativize(t *testing.T) {
	r := &Runner{Loader: fixtureLoader(), Config: determConfig("determfix"), Root: "testdata"}
	findings, err := r.Lint("determfix")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("expected findings from determfix")
	}
	for _, f := range findings {
		if f.File != "src/determfix/determfix.go" {
			t.Fatalf("finding not relativized against Root: %q", f.File)
		}
	}
}

func TestLintUnknownCheckError(t *testing.T) {
	r := &Runner{Loader: fixtureLoader(), Config: Config{Checks: []string{"bogus"}}}
	if _, err := r.Lint("determfix"); err == nil {
		t.Fatal("Lint with an unknown check: expected error")
	}
}
