package lint

import (
	"strings"
	"testing"
)

func TestLoadUnregisteredPackage(t *testing.T) {
	if _, err := NewLoader().Load("no/such/pkg"); err == nil ||
		!strings.Contains(err.Error(), "not part of the loaded module") {
		t.Fatalf("unregistered load: err = %v", err)
	}
}

func TestLoadParseError(t *testing.T) {
	l := NewLoader()
	l.AddSource("broken", map[string]string{"broken.go": "package broken\nfunc {"})
	if _, err := l.Load("broken"); err == nil {
		t.Fatal("parse error not reported")
	}
}

func TestLoadTypeError(t *testing.T) {
	l := NewLoader()
	l.AddSource("illtyped", map[string]string{"illtyped.go": "package illtyped\nvar X int = \"s\"\n"})
	if _, err := l.Load("illtyped"); err == nil ||
		!strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("type error: err = %v", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	l := NewLoader()
	l.AddSource("cyca", map[string]string{"cyca.go": "package cyca\nimport \"cycb\"\nvar A = cycb.B\n"})
	l.AddSource("cycb", map[string]string{"cycb.go": "package cycb\nimport \"cyca\"\nvar B = cyca.A\n"})
	if _, err := l.Load("cyca"); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Fatalf("import cycle: err = %v", err)
	}
}

func TestLoadMemoized(t *testing.T) {
	l := fixtureLoader()
	p1, err := l.Load("lockwork")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	p2, err := l.Load("lockwork")
	if err != nil || p1 != p2 {
		t.Fatalf("second load not memoized: %p vs %p (%v)", p1, p2, err)
	}
	if p1.Types == nil || p1.Info == nil || len(p1.Files) == 0 {
		t.Fatal("loaded package is incomplete")
	}
}

// TestAddModuleRealRepo walks the actual repository and proves the
// default config names only packages that exist — the config-rot guard
// the CLI runs on every invocation, exercised here against the live
// tree.
func TestAddModuleRealRepo(t *testing.T) {
	l := NewLoader()
	modPath, paths, err := l.AddModule("../..")
	if err != nil {
		t.Fatalf("AddModule: %v", err)
	}
	if modPath != "repro" {
		t.Fatalf("module path = %q, want repro", modPath)
	}
	known := make(map[string]bool, len(paths))
	for _, p := range paths {
		if strings.Contains(p, "/testdata/") {
			t.Errorf("testdata package leaked into the module walk: %s", p)
		}
		known[p] = true
	}
	for _, want := range []string{"repro", "repro/internal/lint", "repro/cmd/pmlint"} {
		if !known[want] {
			t.Errorf("module walk missing %s", want)
		}
	}
	r := &Runner{Loader: l, Config: DefaultConfig(modPath)}
	if err := r.SelfCheck(paths); err != nil {
		t.Fatalf("default config rotted against the real module: %v", err)
	}
}
