package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func determConfig(pkgs ...string) Config {
	return Config{
		Checks:                []string{CheckDeterminism},
		DeterministicPackages: pkgs,
	}
}

func TestDeterminismFixture(t *testing.T) {
	findings := lintFixture(t, determConfig("determfix"), "determfix")
	matchWants(t, findings, filepath.Join("testdata", "src", "determfix", "determfix.go"))
}

// TestDeterminismSortDeletionFires is the seeded mutation of the
// acceptance criteria: deleting the sort after an append-accumulating
// map range must turn the previously clean function into a finding.
func TestDeterminismSortDeletionFires(t *testing.T) {
	src := fixtureSource(t, "determfix")
	base := lintFixture(t, determConfig("determfix"), "determfix")

	mutated := mutate(t, src, "\tsort.Strings(out)\n", "")
	got := lintInMemory(t, determConfig("determmut"), "determmut", mutated)

	if len(got) != len(base)+1 {
		t.Fatalf("sort deletion: got %d findings, want %d (base) + 1", len(got), len(base))
	}
	extra := 0
	for _, f := range got {
		if strings.Contains(f.Message, "append into out") {
			extra++
		}
	}
	// The fixture's Names function already appends unsorted; the mutated
	// SortedNames adds the second occurrence.
	if extra != 2 {
		t.Fatalf("sort deletion: %d 'append into out' findings, want 2:\n%v", extra, got)
	}
}

// TestDeterminismUnsortedPackageIgnored checks the scoping: the same
// source outside the deterministic-path list produces nothing.
func TestDeterminismUnsortedPackageIgnored(t *testing.T) {
	findings := lintFixture(t, determConfig("someotherpkg"), "determfix")
	if len(findings) != 0 {
		t.Fatalf("determfix outside the deterministic list: got %d findings, want 0", len(findings))
	}
}
