package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func lockConfig(pkgs ...string) Config {
	return Config{
		Checks:             []string{CheckLockScope},
		LockScopePackages:  pkgs,
		ForbiddenUnderLock: []string{"lockwork.*", "lockstore.Store.Put"},
	}
}

func TestLockScopeFixture(t *testing.T) {
	findings := lintFixture(t, lockConfig("lockfix"), "lockfix")
	matchWants(t, findings, filepath.Join("testdata", "src", "lockfix", "lockfix.go"))
}

// TestLockScopeUnlockDeletionFires is the seeded mutation of the
// acceptance criteria: removing the Unlock between the state copy and
// the compile call stretches the critical section over the compiler,
// and the check must fire.
func TestLockScopeUnlockDeletionFires(t *testing.T) {
	src := fixtureSource(t, "lockfix")
	base := lintFixture(t, lockConfig("lockfix"), "lockfix")

	mutated := mutate(t, src,
		"\tn := s.last\n\ts.mu.Unlock()\n\treturn n + lockwork.Compile(src)\n",
		"\tn := s.last\n\treturn n + lockwork.Compile(src)\n")
	got := lintInMemory(t, lockConfig("lockmut"), "lockmut", mutated)

	if len(got) != len(base)+1 {
		t.Fatalf("unlock deletion: got %d findings, want %d (base) + 1", len(got), len(base))
	}
	extra := 0
	for _, f := range got {
		if f.File == "lockmut.go" && strings.Contains(f.Message, "lockwork.Compile called while holding s.mu") {
			extra++
		}
	}
	// Direct and MaybeHeld already hold s.mu over Compile; the
	// no-longer-released Release is the third.
	if extra != 3 {
		t.Fatalf("unlock deletion: %d 'Compile while holding s.mu' findings, want 3:\n%v", extra, got)
	}
}

// TestLockScopePackageScoping: the same source outside the lock-scope
// list produces nothing.
func TestLockScopePackageScoping(t *testing.T) {
	findings := lintFixture(t, lockConfig("someotherpkg"), "lockfix")
	if len(findings) != 0 {
		t.Fatalf("lockfix outside the lock-scope list: got %d findings, want 0", len(findings))
	}
}
