// Package determfix is a pmlint fixture: map-range escapes and ambient
// nondeterminism for the determinism check. Lines carrying a want
// comment must produce a matching finding; every other line must stay
// clean.
package determfix

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"time"
)

// Names leaks iteration order: append into an escaping slice with no
// later sort.
func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "\[determinism\] map iteration order escapes \(append into out\)"
	}
	return out
}

// SortedNames is the sanctioned form: append, then sort.
func SortedNames(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SlicesKeys sorts through the slices package, equally sanctioned.
func SlicesKeys(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Group fills each map slot independently: the destination is keyed by
// the range key, so placement does not depend on iteration order.
func Group(m map[string][]int) map[string][]int {
	out := make(map[string][]int)
	for k, vs := range m {
		out[k] = append(out[k], vs...)
	}
	return out
}

// Render writes map entries straight into a buffer: unsortable escapes.
func Render(m map[string]int) string {
	var b bytes.Buffer
	for k, v := range m {
		b.WriteString(k)           // want "\[determinism\] map iteration order escapes \(WriteString into an io.Writer\)"
		fmt.Fprintf(&b, "=%d;", v) // want "\[determinism\] map iteration order escapes \(fmt.Fprintf\)"
	}
	return b.String()
}

// Feed streams keys in iteration order.
func Feed(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "\[determinism\] map iteration order escapes \(send on a channel\)"
	}
}

// Sum is order-independent aggregation: nothing to flag.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Totals copies and sorts a plain slice — it keeps the sort import
// alive when the mutation test deletes SortedNames' sort call.
func Totals(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().UnixNano() // want "\[determinism\] time.Now in deterministic-path package determfix"
}

// Roll draws from the global source.
func Roll() int {
	return rand.Intn(6) // want "\[determinism\] global rand.Intn in deterministic-path package determfix"
}

// SeededRoll threads an injectable generator: the allowed convention.
func SeededRoll() int {
	return rand.New(rand.NewSource(1)).Intn(6)
}
