// Package lockstore is a pmlint fixture: a store whose Put stands in
// for disk I/O (forbidden under a lock via the exact
// "lockstore.Store.Put" pattern) while Stats is a cheap in-memory read
// that stays legal.
package lockstore

// Store is the fixture store.
type Store struct{ n int }

// Put stands in for the disk write.
func (s *Store) Put(key string, v []byte) { s.n += len(key) + len(v) }

// Stats is safe under a lock.
func (s *Store) Stats() int { return s.n }
