// Package spanfix is a pmlint fixture for the spanpair check: span
// pairing on every path, context-first parameters and context struct
// fields, next to the sanctioned defer / explicit-End / hand-off idioms.
package spanfix

import (
	"context"
	"errors"

	"faketel"
)

// Deferred is the canonical pairing.
func Deferred(ctx context.Context) {
	ctx, sp := faketel.StartSpan(ctx, "ok")
	defer sp.End()
	_ = ctx
}

// Explicit ends on every return path without a defer.
func Explicit(ctx context.Context, fail bool) error {
	_, sp := faketel.StartSpan(ctx, "explicit")
	if fail {
		sp.End()
		return errors.New("fail")
	}
	sp.End()
	return nil
}

// Leaky never ends its span.
func Leaky(ctx context.Context) {
	_, sp := faketel.StartSpan(ctx, "leaky") // want "\[spanpair\] span sp is never ended"
	sp.SetAttr("k", "v")
}

// LeakOnError misses the error path.
func LeakOnError(ctx context.Context, fail bool) error {
	_, sp := faketel.StartSpan(ctx, "half")
	if fail {
		return errors.New("fail") // want "\[spanpair\] return may leak span sp"
	}
	sp.End()
	return nil
}

// Discarded throws the span away.
func Discarded(ctx context.Context) {
	ctx, _ = faketel.StartSpan(ctx, "gone") // want "\[spanpair\] StartSpan result discarded"
	_ = ctx
}

// Handoff ends the span on the worker that finishes the job: the
// closure's End counts.
func Handoff(ctx context.Context, done chan struct{}) {
	_, sp := faketel.StartSpan(ctx, "handoff")
	go func() {
		<-done
		sp.End()
	}()
}

// BuriedCtx takes the context late.
func BuriedCtx(name string, ctx context.Context) string { // want "\[spanpair\] context.Context must be the first parameter"
	_ = ctx
	return name
}

// Carrier stashes a context in state.
type Carrier struct {
	ctx context.Context // want "\[spanpair\] struct field holds a context.Context"
}

// Use keeps the carrier's field referenced.
func (c Carrier) Use() context.Context { return c.ctx }
