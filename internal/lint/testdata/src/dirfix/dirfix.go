// Package dirfix is a pmlint fixture for the directives check: the
// //pmlint:allow escape hatch in its well-formed, stale and malformed
// shapes. The directive test asserts the exact findings (want comments
// cannot share a line with a directive — the reason would swallow them).
package dirfix

import (
	"context"
	"time"
)

// Stamp is annotated: the allow on the line above suppresses the
// time.Now finding.
func Stamp() int64 {
	//pmlint:allow determinism fixture clock is telemetry-only
	return time.Now().UnixNano()
}

// Trailing carries the allow on the flagged line itself.
func Trailing() int64 {
	return time.Now().UnixNano() //pmlint:allow determinism fixture trailing-comment form
}

// The stale case: this allow suppresses nothing and must be reported.
//
//pmlint:allow determinism nothing near this line uses the clock

// The missing-reason case: this allow must be reported.
//
//pmlint:allow determinism

// The unknown-check case: this allow must be reported.
//
//pmlint:allow bogus some reason text

// Carrier is sanctioned by the annotated field.
type Carrier struct {
	//pmlint:allow spanpair fixture carrier is sanctioned
	ctx context.Context
}

// Use keeps the carrier's field referenced.
func (c Carrier) Use() context.Context { return c.ctx }
