// Package lockwork is a pmlint fixture: stand-ins for the compile and
// enumerate entry points that the lockscope check must keep out of
// critical sections (matched by the "lockwork.*" pattern).
package lockwork

// Compile stands in for the synthesis entry point.
func Compile(src string) int { return len(src) }

// Enumerate stands in for the sweep enumerator.
func Enumerate() []int { return []int{1} }
