// Package faketel is a pmlint fixture standing in for the telemetry
// package: the StartSpan/End surface the spanpair check pairs up.
package faketel

import "context"

// Span is the fixture span.
type Span struct{ name string }

// End closes the span.
func (s *Span) End() {}

// SetAttr records an attribute.
func (s *Span) SetAttr(k, v string) { s.name = k + "=" + v }

// StartSpan opens a span riding ctx.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{name: name}
}
