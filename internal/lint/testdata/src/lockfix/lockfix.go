// Package lockfix is a pmlint fixture for the lockscope check: compile
// entry points, disk writes and dynamic calls under held mutexes, next
// to the sanctioned copy-then-release shapes that must stay clean.
package lockfix

import (
	"sync"

	"lockstore"
	"lockwork"
)

// Server is the fixture serving type.
type Server struct {
	mu    sync.Mutex
	rmu   sync.RWMutex
	store lockstore.Store
	hook  func()
	last  int
}

// Direct compiles while holding the lock.
func (s *Server) Direct(src string) {
	s.mu.Lock()
	s.last = lockwork.Compile(src) // want "\[lockscope\] lockwork.Compile called while holding s.mu"
	s.mu.Unlock()
}

// Release copies under the lock and compiles outside it: the sanctioned
// admission shape.
func (s *Server) Release(src string) int {
	s.mu.Lock()
	n := s.last
	s.mu.Unlock()
	return n + lockwork.Compile(src)
}

// helper reaches the compiler without locking anything itself.
func helper(src string) int {
	return lockwork.Compile(src)
}

// Transitive reaches Compile through helper while locked.
func (s *Server) Transitive(src string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.last = helper(src) // want "\[lockscope\] helper can reach lockwork.Compile while holding s.mu"
}

// DeferredHold holds to the end of the function through the defer.
func (s *Server) DeferredHold() {
	s.mu.Lock()
	defer s.mu.Unlock()
	lockwork.Enumerate() // want "\[lockscope\] lockwork.Enumerate called while holding s.mu"
}

// ReadEnumerate enumerates under a read lock: still forbidden.
func (s *Server) ReadEnumerate() {
	s.rmu.RLock()
	lockwork.Enumerate() // want "\[lockscope\] lockwork.Enumerate called while holding s.rmu"
	s.rmu.RUnlock()
}

// refreshLocked follows the repo convention: the caller holds the lock.
func (s *Server) refreshLocked(src string) {
	s.last = lockwork.Compile(src) // want "\[lockscope\] lockwork.Compile called while holding \(caller's lock\)"
}

// Refresh pairs with refreshLocked, keeping it referenced.
func (s *Server) Refresh(src string) {
	s.refreshLocked(src)
}

// Dynamic runs a client-controlled hook under the lock.
func (s *Server) Dynamic() {
	s.mu.Lock()
	s.hook() // want "\[lockscope\] dynamic call through s.hook while holding s.mu"
	s.mu.Unlock()
}

// DynamicAfter runs the hook after releasing: fine.
func (s *Server) DynamicAfter() {
	s.mu.Lock()
	s.last++
	s.mu.Unlock()
	s.hook()
}

// PutUnderLock writes to the store while locked; the Stats read on the
// next line stays legal.
func (s *Server) PutUnderLock(v []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.Put("k", v) // want "\[lockscope\] lockstore.Store.Put called while holding s.mu"
	s.last = s.store.Stats()
}

// MaybeHeld joins a locked and an unlocked path: possibly-held counts
// as held.
func (s *Server) MaybeHeld(lock bool, src string) {
	if lock {
		s.mu.Lock()
	}
	lockwork.Compile(src) // want "\[lockscope\] lockwork.Compile called while holding s.mu"
	if lock {
		s.mu.Unlock()
	}
}

// DefineUnderLock defines (but does not run) a closure under the lock
// and runs it after release: both halves are legal.
func (s *Server) DefineUnderLock(src string) {
	s.mu.Lock()
	run := func() { lockwork.Compile(src) }
	s.mu.Unlock()
	run()
}

// Inline invokes a literal immediately: its body runs under the lock.
func (s *Server) Inline() {
	s.mu.Lock()
	func() {
		lockwork.Enumerate() // want "\[lockscope\] lockwork.Enumerate called while holding s.mu"
	}()
	s.mu.Unlock()
}

// Spawn hands the compile to a goroutine, which does not inherit the
// caller's lock; the critical section itself stays cheap.
func (s *Server) Spawn(src string) {
	s.mu.Lock()
	go func() { s.last = lockwork.Compile(src) }()
	s.mu.Unlock()
}
