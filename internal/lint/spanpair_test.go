package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func spanConfig() Config {
	return Config{
		Checks:           []string{CheckSpanPair},
		TelemetryPackage: "faketel",
	}
}

func TestSpanPairFixture(t *testing.T) {
	findings := lintFixture(t, spanConfig(), "spanfix")
	matchWants(t, findings, filepath.Join("testdata", "src", "spanfix", "spanfix.go"))
}

// TestSpanPairDeferDeletionFires is the seeded mutation of the
// acceptance criteria: replacing the `defer sp.End()` of the clean
// Deferred function with span work that never ends it must fire the
// never-ended diagnostic.
func TestSpanPairDeferDeletionFires(t *testing.T) {
	src := fixtureSource(t, "spanfix")
	base := lintFixture(t, spanConfig(), "spanfix")

	mutated := mutate(t, src, "\tdefer sp.End()\n", "\tsp.SetAttr(\"k\", \"v\")\n")
	got := lintInMemory(t, spanConfig(), "spanmut1", mutated)

	if len(got) != len(base)+1 {
		t.Fatalf("defer deletion: got %d findings, want %d (base) + 1", len(got), len(base))
	}
	extra := 0
	for _, f := range got {
		if f.File == "spanmut1.go" && strings.Contains(f.Message, "span sp is never ended") {
			extra++
		}
	}
	// Leaky already never ends; the mutated Deferred is the second.
	if extra != 2 {
		t.Fatalf("defer deletion: %d never-ended findings, want 2:\n%v", extra, got)
	}
}

// TestSpanPairPathEndDeletionFires: deleting the End on one return path
// of the clean Explicit function must flag that return as a leak.
func TestSpanPairPathEndDeletionFires(t *testing.T) {
	src := fixtureSource(t, "spanfix")
	base := lintFixture(t, spanConfig(), "spanfix")

	mutated := mutate(t, src,
		"\t\tsp.End()\n\t\treturn errors.New(\"fail\")\n",
		"\t\treturn errors.New(\"fail\")\n")
	got := lintInMemory(t, spanConfig(), "spanmut2", mutated)

	if len(got) != len(base)+1 {
		t.Fatalf("path End deletion: got %d findings, want %d (base) + 1", len(got), len(base))
	}
	extra := 0
	for _, f := range got {
		if f.File == "spanmut2.go" && strings.Contains(f.Message, "return may leak span sp") {
			extra++
		}
	}
	// LeakOnError already leaks one path; the mutated Explicit is the
	// second.
	if extra != 2 {
		t.Fatalf("path End deletion: %d leak findings, want 2:\n%v", extra, got)
	}
}

// TestSpanPairSkipsTelemetryPackage: the telemetry package itself is
// exempt (it implements the API, it does not consume it).
func TestSpanPairSkipsTelemetryPackage(t *testing.T) {
	cfg := spanConfig()
	cfg.TelemetryPackage = "spanfix"
	findings := lintFixture(t, cfg, "spanfix")
	if len(findings) != 0 {
		t.Fatalf("spanfix as the telemetry package: got %d findings, want 0:\n%v", len(findings), findings)
	}
}
