package lint

import (
	"strings"
	"testing"
)

func dirConfig() Config {
	return Config{
		Checks:                []string{CheckDeterminism, CheckSpanPair, CheckDirectives},
		DeterministicPackages: []string{"dirfix", "dirmut"},
		TelemetryPackage:      "faketel",
	}
}

// fixtureLine finds the 1-based line of the first source line containing
// needle.
func fixtureLine(t *testing.T, src, needle string) int {
	t.Helper()
	for i, line := range strings.Split(src, "\n") {
		if strings.Contains(line, needle) {
			return i + 1
		}
	}
	t.Fatalf("fixture line containing %q not found", needle)
	return 0
}

// TestDirectivesFixture pins the dirfix behavior: the two live allows
// (plus the sanctioned context carrier) suppress their findings, while
// the stale, reason-less and unknown-check directives each produce a
// directives finding of their own.
func TestDirectivesFixture(t *testing.T) {
	src := fixtureSource(t, "dirfix")
	findings := lintFixture(t, dirConfig(), "dirfix")

	for _, f := range findings {
		if f.Check != CheckDirectives {
			t.Errorf("non-directive finding leaked through an allow: %s", f)
		}
	}
	expect := map[int]string{
		fixtureLine(t, src, "nothing near this line uses the clock"): "pmlint:allow determinism suppresses nothing; delete the stale directive",
		reasonlessLine(t, src):                        "pmlint:allow determinism needs a reason",
		fixtureLine(t, src, "bogus some reason text"): "pmlint:allow names unknown check bogus",
	}
	if len(findings) != len(expect) {
		t.Fatalf("dirfix: got %d findings, want %d:\n%v", len(findings), len(expect), findings)
	}
	for _, f := range findings {
		msg, ok := expect[f.Line]
		if !ok {
			t.Errorf("finding on unexpected line %d: %s", f.Line, f)
			continue
		}
		if f.Message != msg {
			t.Errorf("line %d: got message %q, want %q", f.Line, f.Message, msg)
		}
	}
}

// reasonlessLine locates the exact `//pmlint:allow determinism` line
// (no trailing reason), which fixtureLine's substring match cannot
// distinguish from the well-formed directives.
func reasonlessLine(t *testing.T, src string) int {
	t.Helper()
	for i, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) == "//pmlint:allow determinism" {
			return i + 1
		}
	}
	t.Fatal("reason-less directive not found in fixture")
	return 0
}

// TestUnusedAllowFails is the contract from the issue: an allow that
// suppresses a live finding passes, and the same allow over fixed code
// fails the lint until it is deleted.
func TestUnusedAllowFails(t *testing.T) {
	const annotated = `// Package dirmut is an in-memory pmlint fixture.
package dirmut

import "time"

//pmlint:allow determinism clock is telemetry-only
var Epoch = time.Now().Unix()

// Day keeps the time import alive when Epoch stops using the clock.
var Day = 24 * time.Hour
`
	if got := lintInMemory(t, dirConfig(), "dirmut", annotated); len(got) != 0 {
		t.Fatalf("live allow: got %d findings, want 0:\n%v", len(got), got)
	}

	fixed := strings.Replace(annotated, "time.Now().Unix()", "int64(0)", 1)
	got := lintInMemory(t, dirConfig(), "dirmut2", fixed)
	if len(got) != 1 {
		t.Fatalf("stale allow: got %d findings, want 1:\n%v", len(got), got)
	}
	if got[0].Check != CheckDirectives || !strings.Contains(got[0].Message, "suppresses nothing") {
		t.Fatalf("stale allow: unexpected finding %s", got[0])
	}
}

// TestDirectiveDoesNotSuppressOtherChecks: an allow only silences its
// named check; a different check's finding on the same line survives.
func TestDirectiveDoesNotSuppressOtherChecks(t *testing.T) {
	const src = `// Package dirmix is an in-memory pmlint fixture.
package dirmix

import "time"

//pmlint:allow spanpair wrong check for this line
var Epoch = time.Now().Unix()
`
	cfg := dirConfig()
	cfg.DeterministicPackages = []string{"dirmix"}
	got := lintInMemory(t, cfg, "dirmix", src)
	if len(got) != 2 {
		t.Fatalf("mismatched allow: got %d findings, want 2 (time.Now + stale allow):\n%v", len(got), got)
	}
	var haveDet, haveDir bool
	for _, f := range got {
		switch f.Check {
		case CheckDeterminism:
			haveDet = true
		case CheckDirectives:
			haveDir = true
		}
	}
	if !haveDet || !haveDir {
		t.Fatalf("mismatched allow: want one determinism and one directives finding:\n%v", got)
	}
}
