package lint

// Shared call-site resolution used by the checks.

import (
	"go/ast"
	"go/types"
)

// callee classifies a call expression's target.
type callee struct {
	fn         *types.Func // static function or method, nil otherwise
	builtin    bool        // len, append, close, ...
	conversion bool        // T(x)
	dynamic    bool        // call through a function value
}

// resolveCall classifies what call invokes, using the package's type
// information.
func resolveCall(pkg *Package, call *ast.CallExpr) callee {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Builtin:
			return callee{builtin: true}
		case *types.TypeName:
			return callee{conversion: true}
		case *types.Func:
			return callee{fn: obj}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return callee{fn: fn} // method call (value, pointer or interface)
			}
			return callee{dynamic: true} // func-typed struct field
		}
		// Qualified identifier: pkg.Func or pkg.Type(x).
		switch obj := pkg.Info.Uses[fun.Sel].(type) {
		case *types.TypeName:
			return callee{conversion: true}
		case *types.Func:
			return callee{fn: obj}
		case *types.Var:
			return callee{dynamic: true} // package-level func variable
		}
	}
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return callee{conversion: true}
	}
	return callee{dynamic: true}
}

// funcKey names a static function for the forbidden-call patterns:
// "pkgpath.Func" for package functions, "pkgpath.Type.Method" for
// methods (pointer receivers dereferenced). Functions without a package
// (error.Error, universe builtins) return "".
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			key += "." + named.Obj().Name()
		} else {
			key += ".(recv)"
		}
	}
	return key + "." + fn.Name()
}

// rootIdentObj resolves the root identifier of an expression chain
// (x, x.f, x[i], *x, &x) to its object, or nil.
func rootIdentObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[v]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.CallExpr:
			if len(v.Args) == 1 {
				e = v.Args[0] // conversions like Interface(obj)
				continue
			}
			return nil
		default:
			return nil
		}
	}
}

// walkSkippingFuncLits visits the expressions of n without descending
// into nested function literals, whose bodies are analyzed as their own
// functions.
func walkSkippingFuncLits(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return visit(m)
	})
}
