package lint

// The escape hatch. A comment of the form
//
//	//pmlint:allow <check> <reason>
//
// suppresses findings of the named check on the directive's own line and
// on the line directly below it — so it works both as a trailing comment
// and as a standalone comment above the flagged construct. The reason is
// mandatory: an allow without a justification is an error. So is an
// allow that no longer suppresses anything — a stale suppression is how
// invariants quietly stop being enforced, so it fails the build until it
// is deleted.

import (
	"go/token"
	"strings"
)

// directivePrefix is matched after the "//" of a line comment.
const directivePrefix = "pmlint:allow"

// directive is one parsed //pmlint:allow comment.
type directive struct {
	check  string
	reason string
	pos    token.Pos
	file   string
	line   int
	bad    string // non-empty: malformed, with the error message
	used   bool
}

// parseDirectives extracts every pmlint directive from the package.
func parseDirectives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				rest, ok := strings.CutPrefix(strings.TrimPrefix(text, " "), directivePrefix)
				if !ok {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				d := &directive{pos: c.Pos(), file: p.Filename, line: p.Line}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "pmlint:allow needs a check name and a reason"
				case !KnownCheck(fields[0]):
					d.bad = "pmlint:allow names unknown check " + strings.Trim(fields[0], `"`)
				case len(fields) < 2:
					d.bad = "pmlint:allow " + fields[0] + " needs a reason"
				default:
					d.check = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyDirectives filters raw findings through the package's directives.
// A well-formed directive suppresses matching-check findings on its own
// line or the next. When validate is set (the directives check is
// selected), malformed and unused directives become findings themselves,
// built with mkFinding; directive findings are never suppressible.
func applyDirectives(pkg *Package, raw []Finding, mkFinding func(check string, pos token.Pos, msg string) Finding, validate bool) []Finding {
	dirs := parseDirectives(pkg)
	var kept []Finding
	for _, f := range raw {
		suppressed := false
		for _, d := range dirs {
			if d.bad != "" || d.check != f.Check {
				continue
			}
			if sameFile(d.file, f.File) && (d.line == f.Line || d.line+1 == f.Line) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	if validate {
		for _, d := range dirs {
			switch {
			case d.bad != "":
				kept = append(kept, mkFinding(CheckDirectives, d.pos, d.bad))
			case !d.used:
				kept = append(kept, mkFinding(CheckDirectives, d.pos,
					"pmlint:allow "+d.check+" suppresses nothing; delete the stale directive"))
			}
		}
	}
	return kept
}

// sameFile compares a directive's absolute file name against a finding's
// (possibly root-relativized) file name.
func sameFile(abs, found string) bool {
	return abs == found || strings.HasSuffix(abs, "/"+found)
}
