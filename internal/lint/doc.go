// Package lint is the repository's project-specific static analysis
// engine, built exclusively on the standard library (go/ast, go/parser,
// go/types with the source importer — the module stays dependency-free).
// It loads every package in the module and enforces the invariants the
// rest of the toolchain only checks dynamically:
//
//   - determinism: the synthesis-core packages must not let map
//     iteration order escape unsorted, and must not touch time.Now or
//     the global math/rand source — the byte-identical-sweep and
//     fingerprint-stability contracts, per commit instead of per seed.
//   - lockscope: the serving-layer packages must not run
//     compile/enumerate/synthesis entry points, disk I/O, or any dynamic
//     (client-controlled) call while a sync mutex is held — the
//     admission-pipeline invariant, statically.
//   - spanpair: telemetry.StartSpan needs a matching End on every path,
//     context.Context parameters come first, and contexts do not live in
//     struct fields.
//   - directives: the //pmlint:allow escape hatch requires a reason, and
//     an allow that suppresses nothing is itself an error.
//
// Command pmlint is the CLI; CI runs `pmlint ./...` as a gate next to
// gofmt and vet.
package lint
