package lint

// The determinism check. The deterministic-path packages promise
// byte-identical artifacts for identical inputs — the sweep tables, the
// fingerprints and the differential oracle all stand on it. Two things
// break that promise silently:
//
//   - map iteration whose order escapes: a `for k := range m` that
//     appends into a slice living beyond the loop, writes into an
//     io.Writer (strings.Builder, bytes.Buffer, a hash — anything with a
//     Write method), or sends on a channel, without the result being
//     sorted afterwards;
//   - ambient nondeterminism: time.Now and the global math/rand
//     functions. The injectable form — methods on a *rand.Rand threaded
//     through the call — is the allowed convention.
//
// The sort recognition is lexical: an append-escape is forgiven when a
// sort.* or slices.Sort* call over the same variable appears after the
// loop in the same function. Writer and channel escapes cannot be
// re-sorted after the fact, so they are always reported (annotate the
// legitimate ones).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ioWriter is a structural io.Writer, built rather than imported so the
// check does not pull the io package into every lint run.
var ioWriter = func() *types.Interface {
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
		), false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

// randAllowed are the math/rand package functions that construct
// injectable generators rather than touching the global source.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func checkDeterminism(pkg *Package, report func(check string, pos token.Pos, format string, args ...interface{})) {
	for _, file := range pkg.Files {
		for _, fn := range functionsOf(file) {
			checkMapRanges(pkg, fn, report)
		}
		checkAmbient(pkg, file, report)
	}
}

// checkAmbient flags time.Now and global math/rand uses anywhere in the
// file.
func checkAmbient(pkg *Package, file *ast.File, report func(check string, pos token.Pos, format string, args ...interface{})) {
	ast.Inspect(file, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" {
				report(CheckDeterminism, id.Pos(),
					"time.Now in deterministic-path package %s: inject the clock or annotate telemetry-only use", pkg.Types.Name())
			}
		case "math/rand", "math/rand/v2":
			sig := fn.Type().(*types.Signature)
			if sig.Recv() == nil && !randAllowed[fn.Name()] {
				report(CheckDeterminism, id.Pos(),
					"global %s.%s in deterministic-path package %s: thread a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name(), pkg.Types.Name())
			}
		}
		return true
	})
}

// checkMapRanges flags map-range loops in one function whose iteration
// order escapes.
func checkMapRanges(pkg *Package, fn funcBody, report func(check string, pos token.Pos, format string, args ...interface{})) {
	walkSkippingFuncLits(fn.body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, esc := range mapRangeEscapes(pkg, rng) {
			if esc.sortable != nil && sortedAfter(pkg, fn.body, rng, esc.sortable) {
				continue
			}
			report(CheckDeterminism, esc.pos,
				"map iteration order escapes (%s); sort before emitting or annotate", esc.what)
		}
		return true
	})
}

// escape is one way a map-range body lets iteration order out.
type escape struct {
	pos  token.Pos
	what string
	// sortable, when non-nil, is the slice variable an append targeted —
	// a later sort over it forgives the escape.
	sortable types.Object
}

// mapRangeEscapes scans a map-range body for order-escaping operations.
func mapRangeEscapes(pkg *Package, rng *ast.RangeStmt) []escape {
	var out []escape
	walkSkippingFuncLits(rng.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			out = append(out, escape{pos: v.Pos(), what: "send on a channel"})
		case *ast.CallExpr:
			out = append(out, callEscapes(pkg, rng, v)...)
		}
		return true
	})
	return out
}

// callEscapes classifies one call inside a map-range body.
func callEscapes(pkg *Package, rng *ast.RangeStmt, call *ast.CallExpr) []escape {
	c := resolveCall(pkg, call)
	switch {
	case c.builtin:
		id, _ := ast.Unparen(call.Fun).(*ast.Ident)
		if id == nil || id.Name != "append" || len(call.Args) == 0 {
			return nil
		}
		obj := rootIdentObj(pkg, call.Args[0])
		if obj == nil || withinRange(obj.Pos(), rng) {
			return nil // appending to a loop-local accumulator stays inside
		}
		if keyedByRange(pkg, rng, call.Args[0]) {
			// m[k] = append(m[k], ...) with k the range key: each slot is
			// filled independently of iteration order.
			return nil
		}
		return []escape{{pos: call.Pos(), what: "append into " + obj.Name(), sortable: obj}}
	case c.fn != nil:
		// fmt.Fprint* carry order out through their writer argument.
		if p := c.fn.Pkg(); p != nil && p.Path() == "fmt" &&
			(c.fn.Name() == "Fprint" || c.fn.Name() == "Fprintf" || c.fn.Name() == "Fprintln") {
			return []escape{{pos: call.Pos(), what: "fmt." + c.fn.Name()}}
		}
		// A Write-family method on anything satisfying io.Writer —
		// builders, buffers, hashes, files.
		sig := c.fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil && writeMethod(c.fn.Name()) {
			t := recv.Type()
			if types.Implements(t, ioWriter) || types.Implements(types.NewPointer(t), ioWriter) {
				return []escape{{pos: call.Pos(), what: c.fn.Name() + " into an io.Writer"}}
			}
		}
	}
	return nil
}

// writeMethod reports whether name is one of the io.Writer-family
// emission methods.
func writeMethod(name string) bool {
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return true
	}
	return false
}

// keyedByRange reports whether target is an index expression over a map
// whose index mentions the range statement's key variable — a write
// whose destination is keyed by the iteration element, making its
// placement order-independent.
func keyedByRange(pkg *Package, rng *ast.RangeStmt, target ast.Expr) bool {
	idx, ok := ast.Unparen(target).(*ast.IndexExpr)
	if !ok {
		return false
	}
	if tv, ok := pkg.Info.Types[idx.X]; !ok {
		return false
	} else if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return false
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := pkg.Info.Defs[keyID]
	if keyObj == nil {
		keyObj = pkg.Info.Uses[keyID]
	}
	if keyObj == nil {
		return false
	}
	found := false
	ast.Inspect(idx.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if pkg.Info.Uses[id] == keyObj {
				found = true
			}
		}
		return !found
	})
	return found
}

// withinRange reports whether pos falls inside the range statement.
func withinRange(pos token.Pos, rng *ast.RangeStmt) bool {
	return pos >= rng.Pos() && pos <= rng.End()
}

// sortedAfter reports whether a sort.* or slices.Sort* call mentioning
// obj appears after the range loop inside the same function body.
func sortedAfter(pkg *Package, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() || found {
			return !found
		}
		c := resolveCall(pkg, call)
		if c.fn == nil || c.fn.Pkg() == nil {
			return true
		}
		if p := c.fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			argObj := rootIdentObj(pkg, arg)
			if argObj == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
