package lint

// The fixture harness. Fixture packages live in testdata/src/<path> and
// annotate the lines that must produce findings with
//
//	// want "regex"
//
// comments; the regex is matched against the "[check] message" rendering
// of a finding on that line. Every want must be matched by a finding and
// every finding must be matched by a want — extra findings are as much a
// test failure as missing ones.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// fixturePackages lists every on-disk fixture, registered once on the
// shared loader so the standard library is type-checked a single time
// per test process.
var fixturePackages = []string{
	"determfix", "lockwork", "lockstore", "lockfix", "faketel", "spanfix", "dirfix",
}

var sharedLoader struct {
	once sync.Once
	l    *Loader
}

// fixtureLoader returns the process-wide loader with every fixture
// directory registered. Mutation tests add in-memory packages to it
// under fresh import paths.
func fixtureLoader() *Loader {
	sharedLoader.once.Do(func() {
		l := NewLoader()
		for _, p := range fixturePackages {
			l.AddDir(p, filepath.Join("testdata", "src", p))
		}
		sharedLoader.l = l
	})
	return sharedLoader.l
}

// lintFixture lints one fixture package with the given config on the
// shared loader.
func lintFixture(t *testing.T, cfg Config, path string) []Finding {
	t.Helper()
	r := &Runner{Loader: fixtureLoader(), Config: cfg}
	findings, err := r.Lint(path)
	if err != nil {
		t.Fatalf("lint %s: %v", path, err)
	}
	return findings
}

// expectation is one parsed want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// wantsOf parses the want comments out of a fixture source file.
func wantsOf(t *testing.T, file string) []expectation {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	var out []expectation
	for i, line := range strings.Split(string(data), "\n") {
		_, rest, ok := strings.Cut(line, `// want "`)
		if !ok {
			continue
		}
		pat, ok := strings.CutSuffix(strings.TrimRight(rest, " \t"), `"`)
		if !ok {
			t.Fatalf("%s:%d: malformed want comment", file, i+1)
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp: %v", file, i+1, err)
		}
		out = append(out, expectation{file: file, line: i + 1, re: re})
	}
	return out
}

// matchWants cross-checks findings against the want comments of the
// fixture's source files.
func matchWants(t *testing.T, findings []Finding, files ...string) {
	t.Helper()
	var wants []expectation
	for _, f := range files {
		wants = append(wants, wantsOf(t, f)...)
	}
	matched := make([]bool, len(findings))
	for _, w := range wants {
		found := false
		for i, f := range findings {
			if f.File == w.file && f.Line == w.line && w.re.MatchString(rendered(f)) {
				matched[i] = true
				found = true
			}
		}
		if !found {
			t.Errorf("%s:%d: want %q matched no finding", w.file, w.line, w.re)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

// rendered is the string the want regexps match against.
func rendered(f Finding) string {
	return fmt.Sprintf("[%s] %s", f.Check, f.Message)
}

// fixtureSource reads a fixture file's text for mutation tests.
func fixtureSource(t *testing.T, pkg string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "src", pkg, pkg+".go"))
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	return string(data)
}

// mutate applies one textual edit that must change the source.
func mutate(t *testing.T, src, old, new string) string {
	t.Helper()
	out := strings.Replace(src, old, new, 1)
	if out == src {
		t.Fatalf("mutation %q not found in fixture", old)
	}
	return out
}

// lintInMemory registers src as a single-file package under path on the
// shared loader and lints it.
func lintInMemory(t *testing.T, cfg Config, path, src string) []Finding {
	t.Helper()
	l := fixtureLoader()
	l.AddSource(path, map[string]string{path + ".go": src})
	r := &Runner{Loader: l, Config: cfg}
	findings, err := r.Lint(path)
	if err != nil {
		t.Fatalf("lint %s: %v", path, err)
	}
	return findings
}
