// Package flow decomposes the power management synthesis flow of Monteiro
// et al. (DAC'96) into named passes over a shared context, and provides a
// bounded-concurrency engine that evaluates many configurations of one
// design — the architectural seam between the per-run algorithms
// (internal/core, internal/alloc, internal/ctrl, internal/power) and the
// layers that explore a design space (the root pmsynth.Sweep API,
// cmd/pmsched -sweep, cmd/tables, the benchmark harness).
//
// A Pass is one stage of the flow; a Pipeline runs passes in order over a
// Context, recording per-pass wall-clock timings and diagnostics. The
// Standard pipeline reproduces the paper's fixed sequence:
//
//	schedule -> bind -> controller -> baseline -> activity
//
// See DESIGN.md at the repository root for the architecture.
package flow
