package flow

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/power"
)

// TestRunAllObserved: the observer fires exactly once per configuration
// with its input index, and observation changes nothing about the
// artifacts.
func TestRunAllObserved(t *testing.T) {
	ResetPointCache()
	d := compile(t)
	var cfgs []core.Config
	for b := 2; b <= 5; b++ {
		cfgs = append(cfgs, core.Config{Budget: b, Weights: power.Weights})
	}

	var mu sync.Mutex
	seen := make(map[int]int)
	ctxs, err := RunAllObserved(context.Background(), d.Graph, d.Width, cfgs, 2,
		func(i int, fc *Context) {
			mu.Lock()
			defer mu.Unlock()
			seen[i]++
			if fc == nil || fc.Config.Budget != cfgs[i].Budget {
				t.Errorf("observer %d: wrong context %+v", i, fc)
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cfgs) {
		t.Fatalf("observed %d configs, want %d", len(seen), len(cfgs))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("config %d observed %d times", i, n)
		}
	}

	plain, err := RunAll(context.Background(), d.Graph, d.Width, cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ctxs {
		if ctxs[i].PM.Schedule.String() != plain[i].PM.Schedule.String() {
			t.Fatalf("config %d: observed run diverges from plain run", i)
		}
	}
}
