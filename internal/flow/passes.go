package flow

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/optimal"
	"repro/internal/power"
)

// SchedulePass runs the power management scheduling algorithm (paper
// Fig. 3) and stores the Result.
type SchedulePass struct{}

// Name implements Pass.
func (SchedulePass) Name() string { return "schedule" }

// Run implements Pass.
func (SchedulePass) Run(c *Context) error {
	pm, err := core.Schedule(c.Graph, c.Config)
	if err != nil {
		return err
	}
	c.PM = pm
	c.Diag("schedule: %d steps, %d power managed muxes, units %v",
		pm.Schedule.Steps, pm.NumManaged(), pm.Resources)
	return nil
}

// BindPass maps the PM schedule onto execution units and registers.
type BindPass struct{}

// Name implements Pass.
func (BindPass) Name() string { return "bind" }

// Run implements Pass.
func (BindPass) Run(c *Context) error {
	if c.PM == nil {
		return errors.New("bind requires the schedule pass")
	}
	c.Binding = alloc.Bind(c.PM.Schedule, c.PM.Guards)
	c.Diag("bind: units %v, %d registers", c.Binding.Units, c.Binding.Registers)
	return nil
}

// ControllerPass builds the condition-qualified FSM controller.
type ControllerPass struct{}

// Name implements Pass.
func (ControllerPass) Name() string { return "controller" }

// Run implements Pass.
func (ControllerPass) Run(c *Context) error {
	if c.PM == nil || c.Binding == nil {
		return errors.New("controller requires the schedule and bind passes")
	}
	ctl, err := ctrl.Build(c.PM.Schedule, c.Binding, c.PM.Guards, true)
	if err != nil {
		return err
	}
	c.Controller = ctl
	return nil
}

// BaselinePass schedules, binds and builds the controller of the
// traditional (non power managed) flow at the same throughput — the "Orig"
// design every comparison measures against.
type BaselinePass struct{}

// Name implements Pass.
func (BaselinePass) Name() string { return "baseline" }

// Run implements Pass.
func (BaselinePass) Run(c *Context) error {
	s, res, err := core.Baseline(c.Graph, c.Config.Budget, c.Config.II)
	if err != nil {
		return err
	}
	c.BaselineSchedule = s
	c.BaselineResources = res
	c.BaselineBinding = alloc.Bind(s, nil)
	ctl, err := ctrl.Build(s, c.BaselineBinding, nil, false)
	if err != nil {
		return err
	}
	c.BaselineController = ctl
	c.Diag("baseline: units %v", res)
	return nil
}

// OptimalPass runs the exact minimum-power scheduling baseline for the
// point's budget, II and resources, warm-started from the heuristic
// schedule. Weights default to the paper's table (power.Weights) when the
// configuration leaves them nil, so the objective matches the Table II
// reporting.
type OptimalPass struct {
	// MaxExpansions bounds the branch-and-bound search; zero uses
	// optimal.DefaultMaxExpansions. A truncated search still returns a
	// schedule at least as good as the heuristic seed, plus a sound
	// lower bound in the certificate.
	MaxExpansions int
}

// Name implements Pass. A non-default expansion budget is part of the
// name: it changes the produced artifact, so cached sweep points must not
// alias across budgets.
func (p OptimalPass) Name() string {
	if p.MaxExpansions > 0 {
		return fmt.Sprintf("optimal-schedule(maxexp=%d)", p.MaxExpansions)
	}
	return "optimal-schedule"
}

// Run implements Pass.
func (p OptimalPass) Run(c *Context) error {
	if c.PM == nil {
		return errors.New("optimal-schedule requires the schedule pass")
	}
	weights := c.Config.Weights
	if weights == nil {
		weights = power.Weights
	}
	r, err := optimal.Schedule(c.Graph, optimal.Config{
		Budget:        c.Config.Budget,
		II:            c.Config.II,
		Resources:     c.Config.Resources,
		Weights:       weights,
		MaxExpansions: p.MaxExpansions,
		Seed:          c.PM.Schedule.Time,
	})
	if err != nil {
		return err
	}
	c.Optimal = r
	status := "certified optimal"
	if !r.Cert.Optimal {
		status = fmt.Sprintf("lower bound %.4g after %d expansions", r.Cert.LowerBound, r.Cert.Expansions)
	}
	c.Diag("optimal-schedule: power %.4g (%s), %d guarded ops", r.Power, status, r.Gated)
	return nil
}

// ActivityPass computes the exact per-node execution probabilities of the
// gated design under the equiprobable-select model.
type ActivityPass struct{}

// Name implements Pass.
func (ActivityPass) Name() string { return "activity" }

// Run implements Pass.
func (ActivityPass) Run(c *Context) error {
	if c.PM == nil {
		return errors.New("activity requires the schedule pass")
	}
	c.Activity, c.ActivityExact = power.AnalyzeExact(c.PM.Graph, c.PM.Guards)
	if !c.ActivityExact {
		c.Diag("activity: falling back to sampled analysis (too many selects for the exact enumeration)")
	}
	return nil
}
