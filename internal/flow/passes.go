package flow

import (
	"errors"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/power"
)

// SchedulePass runs the power management scheduling algorithm (paper
// Fig. 3) and stores the Result.
type SchedulePass struct{}

// Name implements Pass.
func (SchedulePass) Name() string { return "schedule" }

// Run implements Pass.
func (SchedulePass) Run(c *Context) error {
	pm, err := core.Schedule(c.Graph, c.Config)
	if err != nil {
		return err
	}
	c.PM = pm
	c.Diag("schedule: %d steps, %d power managed muxes, units %v",
		pm.Schedule.Steps, pm.NumManaged(), pm.Resources)
	return nil
}

// BindPass maps the PM schedule onto execution units and registers.
type BindPass struct{}

// Name implements Pass.
func (BindPass) Name() string { return "bind" }

// Run implements Pass.
func (BindPass) Run(c *Context) error {
	if c.PM == nil {
		return errors.New("bind requires the schedule pass")
	}
	c.Binding = alloc.Bind(c.PM.Schedule, c.PM.Guards)
	c.Diag("bind: units %v, %d registers", c.Binding.Units, c.Binding.Registers)
	return nil
}

// ControllerPass builds the condition-qualified FSM controller.
type ControllerPass struct{}

// Name implements Pass.
func (ControllerPass) Name() string { return "controller" }

// Run implements Pass.
func (ControllerPass) Run(c *Context) error {
	if c.PM == nil || c.Binding == nil {
		return errors.New("controller requires the schedule and bind passes")
	}
	ctl, err := ctrl.Build(c.PM.Schedule, c.Binding, c.PM.Guards, true)
	if err != nil {
		return err
	}
	c.Controller = ctl
	return nil
}

// BaselinePass schedules, binds and builds the controller of the
// traditional (non power managed) flow at the same throughput — the "Orig"
// design every comparison measures against.
type BaselinePass struct{}

// Name implements Pass.
func (BaselinePass) Name() string { return "baseline" }

// Run implements Pass.
func (BaselinePass) Run(c *Context) error {
	s, res, err := core.Baseline(c.Graph, c.Config.Budget, c.Config.II)
	if err != nil {
		return err
	}
	c.BaselineSchedule = s
	c.BaselineResources = res
	c.BaselineBinding = alloc.Bind(s, nil)
	ctl, err := ctrl.Build(s, c.BaselineBinding, nil, false)
	if err != nil {
		return err
	}
	c.BaselineController = ctl
	c.Diag("baseline: units %v", res)
	return nil
}

// ActivityPass computes the exact per-node execution probabilities of the
// gated design under the equiprobable-select model.
type ActivityPass struct{}

// Name implements Pass.
func (ActivityPass) Name() string { return "activity" }

// Run implements Pass.
func (ActivityPass) Run(c *Context) error {
	if c.PM == nil {
		return errors.New("activity requires the schedule pass")
	}
	c.Activity, c.ActivityExact = power.AnalyzeExact(c.PM.Graph, c.PM.Guards)
	if !c.ActivityExact {
		c.Diag("activity: falling back to sampled analysis (too many selects for the exact enumeration)")
	}
	return nil
}
