package flow

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/cdfg"
	"repro/internal/core"
)

// RunAll evaluates the standard pipeline once per configuration over a
// bounded worker pool and returns one Context per configuration, in input
// order. Results are deterministic: the worker count affects wall-clock
// time only, never the artifacts.
//
// The shared read-only analyses of g (fanin cones, depth, height, critical
// path) are prewarmed once and flow into every worker's private clones, so
// the per-configuration runs do not recompute them.
//
// A configuration whose pipeline fails has its error recorded in the
// Context's Err field; RunAll itself returns an error only when ctx is
// canceled, in which case the contexts evaluated so far are still
// returned (unevaluated slots are nil).
func RunAll(ctx context.Context, g *cdfg.Graph, width int, cfgs []core.Config, workers int) ([]*Context, error) {
	return RunAllObserved(ctx, g, width, cfgs, workers, nil)
}

// RunAllObserved is RunAll with a completion observer: observe(i, fc) is
// called once per configuration, immediately after its pipeline finishes
// (successfully or not), with the configuration's input index and its
// Context. Observers feed progress reporting in the layers above (the
// pmsynth sweep API and the pmsynthd job manager).
//
// The observer is called from the worker goroutines, so calls may arrive
// out of input order and concurrently; it must be safe for concurrent use.
// Observation never influences the artifacts: results remain identical to
// an unobserved run.
func RunAllObserved(ctx context.Context, g *cdfg.Graph, width int, cfgs []core.Config, workers int, observe func(i int, fc *Context)) ([]*Context, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	out := make([]*Context, len(cfgs))
	if len(cfgs) == 0 {
		return out, ctx.Err()
	}

	g.PrewarmAnalyses()

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fc := &Context{Ctx: ctx, Graph: g, Width: width, Config: cfgs[i]}
				fc.Err = Standard().Run(fc)
				out[i] = fc
				if observe != nil {
					observe(i, fc)
				}
			}
		}()
	}
feed:
	for i := range cfgs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return out, ctx.Err()
}
