package flow

import (
	"context"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// RunAll evaluates the standard pipeline once per configuration over a
// bounded worker pool and returns one Context per configuration, in input
// order. Results are deterministic: the worker count affects wall-clock
// time only, never the artifacts.
//
// The shared read-only analyses of g (fanin cones, depth, height, critical
// path) are prewarmed once and flow into every worker's private clones, so
// the per-configuration runs do not recompute them. Completed points are
// additionally memoized in the process-wide sweep-point cache (see
// cache.go): re-running a sweep point for an identical (graph, width,
// config) triple returns the cached Context without executing any pass.
//
// A configuration whose pipeline fails has its error recorded in the
// Context's Err field; RunAll itself returns an error only when ctx is
// canceled, in which case the contexts evaluated so far are still
// returned (unevaluated slots are nil).
func RunAll(ctx context.Context, g *cdfg.Graph, width int, cfgs []core.Config, workers int) ([]*Context, error) {
	return RunAllPipelineObserved(ctx, nil, g, width, cfgs, workers, nil)
}

// RunAllPipeline is RunAll with an explicit pipeline: every configuration
// runs p instead of the standard pass sequence (nil p means Standard()).
// Cached sweep points are keyed by the pipeline's pass names as well, so
// sweeps over different pipelines never alias.
func RunAllPipeline(ctx context.Context, p *Pipeline, g *cdfg.Graph, width int, cfgs []core.Config, workers int) ([]*Context, error) {
	return RunAllPipelineObserved(ctx, p, g, width, cfgs, workers, nil)
}

// RunAllObserved is RunAll with a completion observer: observe(i, fc) is
// called once per configuration, immediately after its pipeline finishes
// (successfully or not), with the configuration's input index and its
// Context. Observers feed progress reporting in the layers above (the
// pmsynth sweep API and the pmsynthd job manager).
//
// The observer is called from the worker goroutines, so calls may arrive
// out of input order and concurrently; it must be safe for concurrent use.
// Observation never influences the artifacts: results remain identical to
// an unobserved run.
func RunAllObserved(ctx context.Context, g *cdfg.Graph, width int, cfgs []core.Config, workers int, observe func(i int, fc *Context)) ([]*Context, error) {
	return RunAllPipelineObserved(ctx, nil, g, width, cfgs, workers, observe)
}

// RunAllPipelineObserved combines RunAllPipeline and RunAllObserved: an
// explicit pipeline (nil means Standard()) with a completion observer.
func RunAllPipelineObserved(ctx context.Context, p *Pipeline, g *cdfg.Graph, width int, cfgs []core.Config, workers int, observe func(i int, fc *Context)) ([]*Context, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p == nil {
		p = Standard()
	}
	sig := strings.Join(p.Names(), ",")
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	out := make([]*Context, len(cfgs))
	if len(cfgs) == 0 {
		return out, ctx.Err()
	}

	g.PrewarmAnalyses()

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				fc := runPoint(ctx, p, sig, g, width, cfgs[i])
				out[i] = fc
				if observe != nil {
					observe(i, fc)
				}
			}
		}()
	}
feed:
	for i := range cfgs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return out, ctx.Err()
}

// runPoint evaluates one sweep point through the sweep-point cache: a
// point already computed for an identical (graph, width, config) triple
// returns its memoized Context, concurrent requests for the same point
// coalesce onto one pipeline run, and everything else runs the standard
// pipeline directly. Failed runs — including canceled ones — are never
// cached.
//
// With a telemetry.Trace on ctx, each evaluation records a "point" span
// (budget/II config attrs) whose children are the per-pass spans; a
// point answered from the cache records the span with cached=true and no
// pass children (the passes ran under whichever trace computed it).
func runPoint(ctx context.Context, p *Pipeline, sig string, g *cdfg.Graph, width int, cfg core.Config) *Context {
	pointCache.mu.RLock()
	c := pointCache.c
	pointCache.mu.RUnlock()

	ctx, psp := telemetry.StartSpan(ctx, "point")
	if psp != nil {
		psp.SetAttr("budget", strconv.Itoa(cfg.Budget))
		if cfg.II > 0 {
			psp.SetAttr("ii", strconv.Itoa(cfg.II))
		}
		defer psp.End()
	}

	ran := false
	run := func() *Context {
		ran = true
		fc := &Context{Ctx: ctx, Graph: g, Width: width, Config: cfg}
		fc.Err = p.Run(fc)
		return fc
	}
	defer func() {
		if !ran {
			psp.SetAttr("cached", "true")
		}
	}()
	if c == nil {
		return run()
	}
	var failed *Context
	fc, err := c.GetOrCompute(pointKey(sig, g, width, cfg), func() (*Context, error) {
		fc := run()
		if fc.Err != nil {
			// Keep the Context (the caller reports its Err) but make the
			// cache skip it so a later request retries.
			failed = fc
			return nil, fc.Err
		}
		// A cached Context must not pin the requester's cancellation
		// context beyond the run that computed it.
		fc.Ctx = nil
		return fc, nil
	})
	if err != nil {
		if failed != nil {
			return failed
		}
		// Joined another caller's failed computation: that failure may
		// have been a cancellation of *their* ctx, so run locally rather
		// than report a foreign error.
		return run()
	}
	return fc
}
