package flow

// Sweep-point caching. A design-space sweep runs the standard pipeline
// once per configuration; the serving layer runs whole sweeps repeatedly
// as clients iterate on budgets and orders over the same design. The
// pipeline is deterministic — (graph, width, config) fully determines
// every artifact — so completed Contexts are memoized in a global LRU
// keyed by the graph's content hash plus a canonical encoding of the
// width and configuration. A repeated sweep point returns the cached
// Context without running any pass.
//
// Only successful runs are cached (a failure, including cancellation,
// retries on the next request), and a cached Context has its Ctx field
// cleared so no canceled context outlives the run that computed it.
// Cached Contexts are shared: consumers treat sweep results as read-only
// artifacts, which is already the contract for Contexts handed out by
// RunAll.

import (
	"math"
	"slices"
	"strconv"
	"strings"
	"sync"

	"repro/internal/cache"
	"repro/internal/cdfg"
	"repro/internal/core"
)

// DefaultPointCacheEntries is the default capacity of the sweep-point
// cache. Entries hold full pipeline artifacts (schedules, bindings,
// controllers), so the default stays modest; the pmsynthd flag
// -sweep-point-cache-entries overrides it.
const DefaultPointCacheEntries = 512

var pointCache = struct {
	mu       sync.RWMutex
	capacity int
	c        *cache.Cache[*Context]
}{
	capacity: DefaultPointCacheEntries,
	c:        cache.New[*Context](DefaultPointCacheEntries),
}

// SetPointCacheCapacity resizes the sweep-point cache, dropping all
// resident entries and resetting its counters. A capacity of zero or less
// disables caching entirely.
func SetPointCacheCapacity(n int) {
	pointCache.mu.Lock()
	defer pointCache.mu.Unlock()
	pointCache.capacity = n
	if n <= 0 {
		pointCache.c = nil
		return
	}
	pointCache.c = cache.New[*Context](n)
}

// ResetPointCache drops all resident entries (and counters) while keeping
// the configured capacity. Benchmarks use it to keep every timed sweep
// iteration cold.
func ResetPointCache() {
	pointCache.mu.Lock()
	defer pointCache.mu.Unlock()
	if pointCache.capacity <= 0 {
		return
	}
	pointCache.c = cache.New[*Context](pointCache.capacity)
}

// PointCacheStats snapshots the sweep-point cache counters. A disabled
// cache reports zeros.
func PointCacheStats() cache.Stats {
	pointCache.mu.RLock()
	c := pointCache.c
	pointCache.mu.RUnlock()
	if c == nil {
		return cache.Stats{}
	}
	return c.Stats()
}

// pointKey canonically encodes one sweep point. The pipeline signature
// (comma-joined pass names) leads so sweeps over different pipelines never
// share entries; the graph contributes its memoized content hash; width
// and every Config field follow in a fixed order, with map fields
// (resources, weights) emitted in sorted key order and float weights
// encoded bit-exactly.
func pointKey(sig string, g *cdfg.Graph, width int, cfg core.Config) string {
	var b strings.Builder
	b.Grow(96 + len(sig))
	b.WriteString(sig)
	b.WriteByte('|')
	b.WriteString(g.ContentHash())
	sep := func() { b.WriteByte('|') }
	num := func(v int64) {
		sep()
		b.WriteString(strconv.FormatInt(v, 10))
	}
	num(int64(width))
	num(int64(cfg.Budget))
	num(int64(cfg.II))
	num(int64(cfg.Order))
	if cfg.ForceDirected {
		num(1)
	} else {
		num(0)
	}
	sep()
	if cfg.Resources != nil {
		classes := make([]cdfg.Class, 0, len(cfg.Resources))
		for c := range cfg.Resources {
			classes = append(classes, c)
		}
		slices.Sort(classes)
		b.WriteByte('r')
		for _, c := range classes {
			num(int64(c))
			num(int64(cfg.Resources[c]))
		}
	}
	sep()
	if cfg.Weights != nil {
		classes := make([]cdfg.Class, 0, len(cfg.Weights))
		for c := range cfg.Weights {
			classes = append(classes, c)
		}
		slices.Sort(classes)
		b.WriteByte('w')
		for _, c := range classes {
			num(int64(c))
			num(int64(math.Float64bits(cfg.Weights[c])))
		}
	}
	return b.String()
}
