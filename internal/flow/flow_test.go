package flow

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/silage"
)

const absDiffSrc = `
func absdiff(a: num<8>, b: num<8>) out: num<8> =
begin
    g   = a > b;
    d1  = a - b;
    d2  = b - a;
    out = if g -> d1 || d2 fi;
end
`

func compile(t *testing.T) *silage.Design {
	t.Helper()
	d, err := silage.Compile(absDiffSrc)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStandardPassOrder(t *testing.T) {
	want := []string{"schedule", "bind", "controller", "baseline", "activity"}
	got := Standard().Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestStandardProducesAllArtifacts(t *testing.T) {
	d := compile(t)
	fc := &Context{
		Graph:  d.Graph,
		Width:  d.Width,
		Config: core.Config{Budget: 3, Weights: power.Weights},
	}
	if err := Standard().Run(fc); err != nil {
		t.Fatal(err)
	}
	if fc.PM == nil || fc.Binding == nil || fc.Controller == nil {
		t.Fatal("missing PM artifacts")
	}
	if fc.BaselineSchedule == nil || fc.BaselineBinding == nil || fc.BaselineController == nil {
		t.Fatal("missing baseline artifacts")
	}
	if !fc.ActivityExact {
		t.Error("absdiff activity should be exact")
	}
	if len(fc.Timings) != 5 {
		t.Errorf("timings = %d entries, want 5", len(fc.Timings))
	}
	if fc.Elapsed() <= 0 {
		t.Error("elapsed not recorded")
	}
	if len(fc.Diags) == 0 {
		t.Error("no diagnostics recorded")
	}
	if fc.PM.NumManaged() != 1 {
		t.Errorf("absdiff@3 managed = %d, want 1", fc.PM.NumManaged())
	}
}

func TestPipelineErrorAbortsAndIsAttributed(t *testing.T) {
	d := compile(t)
	fc := &Context{Graph: d.Graph, Width: d.Width, Config: core.Config{Budget: 1}}
	err := Standard().Run(fc)
	if err == nil {
		t.Fatal("budget below critical path should fail")
	}
	if !strings.Contains(err.Error(), `pass "schedule"`) {
		t.Errorf("error %q does not name the failing pass", err)
	}
	if len(fc.Timings) != 1 {
		t.Errorf("timings = %d entries, want 1 (abort after first failure)", len(fc.Timings))
	}
	if fc.Binding != nil {
		t.Error("later passes ran after a failure")
	}
}

// cancelPass cancels the run's context, simulating a shutdown arriving
// while a pass executes.
type cancelPass struct{ cancel context.CancelFunc }

func (cancelPass) Name() string         { return "cancel" }
func (p cancelPass) Run(*Context) error { p.cancel(); return nil }

func TestPipelineChecksCancellationBetweenPasses(t *testing.T) {
	d := compile(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fc := &Context{Ctx: ctx, Graph: d.Graph, Width: d.Width, Config: core.Config{Budget: 3}}
	err := New(cancelPass{cancel}, SchedulePass{}).Run(fc)
	if err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if fc.PM != nil {
		t.Error("schedule pass ran after cancellation")
	}
}

func TestRunAllDeterministicAcrossWorkerCounts(t *testing.T) {
	d := compile(t)
	var cfgs []core.Config
	for b := 2; b <= 6; b++ {
		cfgs = append(cfgs, core.Config{Budget: b, Weights: power.Weights})
	}
	var want []string
	for _, workers := range []int{1, 2, 8} {
		ctxs, err := RunAll(context.Background(), d.Graph, d.Width, cfgs, workers)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]string, len(ctxs))
		for i, fc := range ctxs {
			if fc.Err != nil {
				t.Fatalf("workers=%d cfg %d: %v", workers, i, fc.Err)
			}
			got[i] = fc.PM.Schedule.String()
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d cfg %d: schedule differs from workers=1", workers, i)
			}
		}
	}
}

func TestRunAllRecordsPerConfigErrors(t *testing.T) {
	d := compile(t)
	cfgs := []core.Config{
		{Budget: 3, Weights: power.Weights},
		{Budget: 1}, // below the critical path
		{Budget: 4, Weights: power.Weights},
	}
	ctxs, err := RunAll(context.Background(), d.Graph, d.Width, cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ctxs[0].Err != nil || ctxs[2].Err != nil {
		t.Errorf("good configs failed: %v, %v", ctxs[0].Err, ctxs[2].Err)
	}
	if ctxs[1].Err == nil {
		t.Error("infeasible config did not record an error")
	}
}

func TestRunAllCanceled(t *testing.T) {
	d := compile(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []core.Config{{Budget: 3}, {Budget: 4}}
	ctxs, err := RunAll(ctx, d.Graph, d.Width, cfgs, 1)
	if err == nil {
		t.Fatal("canceled context should surface an error")
	}
	if len(ctxs) != len(cfgs) {
		t.Fatalf("got %d contexts, want %d slots", len(ctxs), len(cfgs))
	}
}

func TestWithOptimalProducesCertifiedBaseline(t *testing.T) {
	d := compile(t)
	fc := &Context{
		Graph:  d.Graph,
		Width:  d.Width,
		Config: core.Config{Budget: 3, Weights: power.Weights},
	}
	if err := WithOptimal().Run(fc); err != nil {
		t.Fatal(err)
	}
	if fc.Optimal == nil {
		t.Fatal("missing optimal artifact")
	}
	if !fc.Optimal.Cert.Optimal {
		t.Fatalf("cert = %+v, want optimal on absdiff", fc.Optimal.Cert)
	}
	hp := fc.Activity.WeightedPower(fc.PM.Graph, power.Weights)
	if fc.Optimal.Power > hp {
		t.Fatalf("optimal power %v above heuristic %v", fc.Optimal.Power, hp)
	}
	if err := fc.Optimal.Schedule.Validate(fc.Config.Resources); err != nil {
		t.Fatalf("invalid optimal schedule: %v", err)
	}
}

func TestRunAllPipelineKeepsPipelinesApartInCache(t *testing.T) {
	ResetPointCache()
	defer ResetPointCache()
	d := compile(t)
	cfgs := []core.Config{{Budget: 3, Weights: power.Weights}}

	std, err := RunAllPipeline(context.Background(), nil, d.Graph, d.Width, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunAllPipeline(context.Background(), WithOptimal(), d.Graph, d.Width, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if std[0].Err != nil || opt[0].Err != nil {
		t.Fatalf("errs: %v / %v", std[0].Err, opt[0].Err)
	}
	if std[0] == opt[0] {
		t.Fatal("standard and optimal pipelines shared one cached Context")
	}
	if std[0].Optimal != nil {
		t.Fatal("standard pipeline produced an optimal artifact")
	}
	if opt[0].Optimal == nil {
		t.Fatal("optimal pipeline missing its artifact")
	}

	// A repeated optimal sweep must hit the cache and return the same
	// Context.
	again, err := RunAllPipeline(context.Background(), WithOptimal(), d.Graph, d.Width, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != opt[0] {
		t.Fatal("warm optimal sweep returned a different Context")
	}
}

func TestOptimalPassNameEncodesExpansionBudget(t *testing.T) {
	if got := (OptimalPass{}).Name(); got != "optimal-schedule" {
		t.Fatalf("default name = %q", got)
	}
	a := New(SchedulePass{}, OptimalPass{MaxExpansions: 7}).Names()
	b := New(SchedulePass{}, OptimalPass{}).Names()
	if strings.Join(a, ",") == strings.Join(b, ",") {
		t.Fatal("expansion budget not reflected in pipeline signature")
	}
}
