package flow

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sched"
)

// sweepCfgs is a small budget ladder for the cache tests.
func sweepCfgs() []core.Config {
	return []core.Config{
		{Budget: 3, Weights: power.Weights},
		{Budget: 4, Weights: power.Weights},
		{Budget: 5, Weights: power.Weights},
	}
}

func TestPointCacheHitsOnRepeatSweep(t *testing.T) {
	ResetPointCache()
	d := compile(t)
	cfgs := sweepCfgs()

	first, err := RunAll(context.Background(), d.Graph, d.Width, cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := PointCacheStats()
	if st.Misses != int64(len(cfgs)) {
		t.Fatalf("after cold sweep: misses = %d, want %d (stats %+v)", st.Misses, len(cfgs), st)
	}
	if st.Entries != int64(len(cfgs)) {
		t.Fatalf("after cold sweep: entries = %d, want %d", st.Entries, len(cfgs))
	}

	second, err := RunAll(context.Background(), d.Graph, d.Width, cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	st = PointCacheStats()
	if st.Hits != int64(len(cfgs)) {
		t.Fatalf("after warm sweep: hits = %d, want %d (stats %+v)", st.Hits, len(cfgs), st)
	}
	for i := range cfgs {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("config %d: errs %v / %v", i, first[i].Err, second[i].Err)
		}
		if second[i] != first[i] {
			t.Errorf("config %d: warm sweep returned a different Context than the cached one", i)
		}
		if second[i].Ctx != nil {
			t.Errorf("config %d: cached Context retains a cancellation context", i)
		}
		if a, b := first[i].PM.Schedule.String(), second[i].PM.Schedule.String(); a != b {
			t.Errorf("config %d: schedules differ:\n%s\nvs\n%s", i, a, b)
		}
	}
}

func TestPointCacheKeyDiscriminates(t *testing.T) {
	d := compile(t)
	g := d.Graph
	base := core.Config{Budget: 3, Weights: power.Weights}
	keys := map[string]string{}
	add := func(name, key string) {
		if prev, ok := keys[key]; ok {
			t.Fatalf("key collision between %s and %s: %q", prev, name, key)
		}
		keys[key] = name
	}
	add("base", pointKey("std", g, d.Width, base))
	add("pipeline", pointKey("std,optimal-schedule", g, d.Width, base))
	add("width", pointKey("std", g, d.Width+1, base))

	budget := base
	budget.Budget = 4
	add("budget", pointKey("std", g, d.Width, budget))

	ii := base
	ii.II = 2
	add("ii", pointKey("std", g, d.Width, ii))

	order := base
	order.Order = core.Order(1)
	add("order", pointKey("std", g, d.Width, order))

	fd := base
	fd.ForceDirected = true
	add("forcedirected", pointKey("std", g, d.Width, fd))

	res := base
	res.Resources = sched.Resources{cdfg.ClassAdd: 1}
	add("resources", pointKey("std", g, d.Width, res))

	noWeights := base
	noWeights.Weights = nil
	add("noweights", pointKey("std", g, d.Width, noWeights))

	// A structurally different graph must change the key even with an
	// identical config.
	g2 := g.Clone()
	if err := g2.AddControlEdge(g2.Muxes()[0], g2.Outputs()[0]); err != nil {
		t.Fatal(err)
	}
	add("graph", pointKey("std", g2, d.Width, base))
}

func TestPointCacheDisabledRunsDirectly(t *testing.T) {
	SetPointCacheCapacity(0)
	defer SetPointCacheCapacity(DefaultPointCacheEntries)

	d := compile(t)
	cfgs := sweepCfgs()[:1]
	out1, err := RunAll(context.Background(), d.Graph, d.Width, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := RunAll(context.Background(), d.Graph, d.Width, cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out1[0] == out2[0] {
		t.Fatal("disabled cache still returned a shared Context")
	}
	if st := PointCacheStats(); st != (cache.Stats{}) {
		t.Fatalf("disabled cache reports nonzero stats: %+v", st)
	}
}
