package flow

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/alloc"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/optimal"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// Context carries one configuration's inputs and every artifact the passes
// produce, plus per-pass timings and human-readable diagnostics. A Context
// is used by one goroutine at a time; distinct Contexts may run
// concurrently even when they share the input Graph (passes treat the
// input as read-only and work on private clones).
type Context struct {
	// Ctx carries cancellation for long runs; nil means never canceled.
	//pmlint:allow spanpair the pipeline Context is the per-run carrier passes thread cancellation through; it lives exactly one Run and is cleared before caching
	Ctx context.Context

	// Graph is the input CDFG. Passes must not mutate it.
	Graph *cdfg.Graph
	// Width is the datapath bit width of the design.
	Width int
	// Config is the scheduling configuration under evaluation.
	Config core.Config

	// PM is the power management scheduling result (schedule pass).
	PM *core.Result
	// Binding maps the PM schedule onto units and registers (bind pass).
	Binding *alloc.Binding
	// Controller is the condition-qualified FSM (controller pass).
	Controller *ctrl.Controller
	// BaselineSchedule/BaselineResources/BaselineBinding/
	// BaselineController are the traditional flow at the same throughput
	// (baseline pass).
	BaselineSchedule   *sched.Schedule
	BaselineResources  sched.Resources
	BaselineBinding    *alloc.Binding
	BaselineController *ctrl.Controller
	// Activity holds the exact per-node execution probabilities under the
	// equiprobable-select model (activity pass); ActivityExact reports
	// whether it was computed exactly.
	Activity      power.Activity
	ActivityExact bool
	// Optimal is the certified minimum-power schedule for the same
	// budget, II and resources (optimal-schedule pass).
	Optimal *optimal.Result

	// Err records the pipeline failure when the Context was produced by
	// the sweep engine (RunAll); a directly-run Pipeline returns the
	// error instead.
	Err error

	// Timings lists per-pass wall-clock durations in execution order.
	Timings []PassTiming
	// Diags collects human-readable per-pass diagnostics.
	Diags []string
}

// PassTiming records how long one pass took.
type PassTiming struct {
	Pass    string
	Elapsed time.Duration
}

// Diag appends a formatted diagnostic line.
func (c *Context) Diag(format string, args ...interface{}) {
	c.Diags = append(c.Diags, fmt.Sprintf(format, args...))
}

// Elapsed returns the total time spent in passes so far.
func (c *Context) Elapsed() time.Duration {
	var total time.Duration
	for _, t := range c.Timings {
		total += t.Elapsed
	}
	return total
}

// canceled reports the cancellation state of the run.
func (c *Context) canceled() error {
	if c.Ctx == nil {
		return nil
	}
	return c.Ctx.Err()
}

// Pass is one stage of the synthesis flow. Run reads earlier artifacts
// from the context and stores its own.
type Pass interface {
	// Name identifies the pass in timings and error messages.
	Name() string
	// Run executes the pass over the context.
	Run(c *Context) error
}

// Pipeline is an ordered sequence of passes.
type Pipeline struct {
	passes []Pass
}

// New composes a pipeline from the given passes.
func New(passes ...Pass) *Pipeline {
	return &Pipeline{passes: append([]Pass(nil), passes...)}
}

// Names returns the pass names in execution order.
func (p *Pipeline) Names() []string {
	out := make([]string, len(p.passes))
	for i, pass := range p.passes {
		out[i] = pass.Name()
	}
	return out
}

// Run executes the passes in order, recording a timing per pass. The first
// pass error aborts the pipeline; cancellation of c.Ctx is checked between
// passes.
//
// When c.Ctx carries a telemetry.Trace, every pass additionally records a
// "pass:<name>" span. Spans only observe — an instrumented run produces
// byte-identical artifacts to an untraced one — and the disabled path
// (no trace in the context) allocates nothing.
func (p *Pipeline) Run(c *Context) error {
	if c == nil || c.Graph == nil {
		return errors.New("flow: nil context or graph")
	}
	for _, pass := range p.passes {
		if err := c.canceled(); err != nil {
			return fmt.Errorf("flow: canceled before pass %q: %w", pass.Name(), err)
		}
		_, sp := telemetry.StartSpan(c.Ctx, "pass:"+pass.Name())
		//pmlint:allow determinism pass wall-clock timing is telemetry only; Timings never feed schedules, tables or fingerprints
		start := time.Now()
		err := pass.Run(c)
		c.Timings = append(c.Timings, PassTiming{Pass: pass.Name(), Elapsed: time.Since(start)})
		if err != nil {
			sp.SetAttr("err", err.Error())
			sp.End()
			return fmt.Errorf("flow: pass %q: %w", pass.Name(), err)
		}
		sp.End()
	}
	return nil
}

// Standard returns the canonical pipeline of the paper's flow: schedule for
// shut-down, bind, build the controller, schedule the traditional baseline,
// and analyze switching activity.
func Standard() *Pipeline {
	return New(SchedulePass{}, BindPass{}, ControllerPass{}, BaselinePass{}, ActivityPass{})
}

// WithOptimal returns the standard pipeline extended with the exact
// minimum-power scheduling baseline (optimal-schedule pass), seeded by the
// heuristic's schedule. Use it when the sweep should report the optimality
// gap alongside every point.
func WithOptimal() *Pipeline {
	return New(SchedulePass{}, BindPass{}, ControllerPass{}, BaselinePass{}, ActivityPass{}, OptimalPass{})
}
