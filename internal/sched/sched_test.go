package sched

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cdfg"
)

// absDiff builds the |a-b| CDFG of paper Figures 1-2.
func absDiff(t *testing.T) *cdfg.Graph {
	t.Helper()
	g := cdfg.New("absdiff")
	a := cdfg.MustAdd(g.AddInput("a"))
	b := cdfg.MustAdd(g.AddInput("b"))
	gt := cdfg.MustAdd(g.AddOp(cdfg.KindGt, "g", a, b))
	d1 := cdfg.MustAdd(g.AddOp(cdfg.KindSub, "d1", a, b))
	d2 := cdfg.MustAdd(g.AddOp(cdfg.KindSub, "d2", b, a))
	m := cdfg.MustAdd(g.AddMux("m", gt, d1, d2))
	cdfg.MustAdd(g.AddOutput("out", m))
	return g
}

func TestASAPBasic(t *testing.T) {
	g := absDiff(t)
	asap, err := ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	if asap[g.Lookup("a")] != 0 {
		t.Errorf("input asap = %d, want 0", asap[g.Lookup("a")])
	}
	if asap[g.Lookup("d1")] != 1 || asap[g.Lookup("g")] != 1 {
		t.Error("first-level ops should have asap 1")
	}
	if asap[g.Lookup("m")] != 2 {
		t.Errorf("mux asap = %d, want 2", asap[g.Lookup("m")])
	}
}

func TestALAPBasic(t *testing.T) {
	g := absDiff(t)
	alap, err := ALAP(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if alap[g.Lookup("m")] != 3 {
		t.Errorf("mux alap = %d, want 3", alap[g.Lookup("m")])
	}
	if alap[g.Lookup("d1")] != 2 {
		t.Errorf("sub alap = %d, want 2", alap[g.Lookup("d1")])
	}
	if alap[g.Lookup("a")] != 1 {
		t.Errorf("input alap = %d, want 1", alap[g.Lookup("a")])
	}
}

func TestWindowFeasibility(t *testing.T) {
	g := absDiff(t)
	w2, err := AnalyzeWindow(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !w2.Feasible() {
		t.Error("budget 2 should be feasible (critical path is 2)")
	}
	w1, err := AnalyzeWindow(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Feasible() {
		t.Error("budget 1 should be infeasible")
	}
	if w2.Mobility(g.Lookup("g")) != 0 {
		// comparator: asap 1, alap 1 at budget 2 (mux must be at 2).
		t.Errorf("comparator mobility = %d, want 0", w2.Mobility(g.Lookup("g")))
	}
}

func TestControlEdgesTightenASAP(t *testing.T) {
	g := absDiff(t)
	// Force subs after the comparator, as the PM pass would.
	for _, name := range []string{"d1", "d2"} {
		if err := g.AddControlEdge(g.Lookup("g"), g.Lookup(name)); err != nil {
			t.Fatal(err)
		}
	}
	asap, err := ASAP(g)
	if err != nil {
		t.Fatal(err)
	}
	if asap[g.Lookup("d1")] != 2 {
		t.Errorf("gated sub asap = %d, want 2", asap[g.Lookup("d1")])
	}
	if asap[g.Lookup("m")] != 3 {
		t.Errorf("mux asap = %d, want 3", asap[g.Lookup("m")])
	}
	mb, err := MinBudget(g)
	if err != nil {
		t.Fatal(err)
	}
	if mb != 3 {
		t.Errorf("min budget with control edges = %d, want 3", mb)
	}
}

func TestListFigure1TwoSteps(t *testing.T) {
	g := absDiff(t)
	s, err := List(g, 2, 2, Resources{cdfg.ClassSub: 2, cdfg.ClassComp: 1, cdfg.ClassMux: 1})
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if err := s.Validate(Resources{cdfg.ClassSub: 2, cdfg.ClassComp: 1, cdfg.ClassMux: 1}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Paper Fig. 1: the only 2-step schedule has all three first, mux last.
	for _, name := range []string{"g", "d1", "d2"} {
		if s.StepOf(g.Lookup(name)) != 1 {
			t.Errorf("%s at step %d, want 1", name, s.StepOf(g.Lookup(name)))
		}
	}
	if s.StepOf(g.Lookup("m")) != 2 {
		t.Errorf("mux at step %d, want 2", s.StepOf(g.Lookup("m")))
	}
}

func TestListTwoStepsOneSubtractorInfeasible(t *testing.T) {
	g := absDiff(t)
	_, err := List(g, 2, 2, Resources{cdfg.ClassSub: 1})
	if err == nil {
		t.Fatal("2 steps with 1 subtractor should be infeasible")
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("error type %T, want *InfeasibleError", err)
	}
	if !ie.HasClass || ie.Class != cdfg.ClassSub {
		t.Errorf("blocking class = %v (has=%v), want sub", ie.Class, ie.HasClass)
	}
}

func TestListThreeStepsOneSubtractor(t *testing.T) {
	g := absDiff(t)
	res := Resources{cdfg.ClassSub: 1, cdfg.ClassComp: 1, cdfg.ClassMux: 1}
	s, err := List(g, 3, 3, res)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if err := s.Validate(res); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Paper Fig. 2(a): subs split across steps 1 and 2, mux in step 3.
	s1, s2 := s.StepOf(g.Lookup("d1")), s.StepOf(g.Lookup("d2"))
	if s1 == s2 {
		t.Errorf("both subs in step %d with one subtractor", s1)
	}
	if s.StepOf(g.Lookup("m")) != 3 {
		t.Errorf("mux at step %d, want 3", s.StepOf(g.Lookup("m")))
	}
}

func TestListBudgetBelowCriticalPath(t *testing.T) {
	g := absDiff(t)
	_, err := List(g, 1, 1, nil)
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("want InfeasibleError, got %v", err)
	}
	if ie.HasClass {
		t.Error("critical-path infeasibility should not blame a class")
	}
	if _, err := List(g, 0, 0, nil); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestListBadII(t *testing.T) {
	g := absDiff(t)
	if _, err := List(g, 3, 4, nil); err == nil {
		t.Error("ii > budget accepted")
	}
	if _, err := List(g, 3, 0, nil); err == nil {
		t.Error("ii = 0 accepted")
	}
}

func TestMinimizeAbsDiff(t *testing.T) {
	g := absDiff(t)
	// At the critical path (2 steps) two subtractors are required.
	s2, res2, err := MinimizeSimple(g, 2)
	if err != nil {
		t.Fatalf("Minimize@2: %v", err)
	}
	if res2[cdfg.ClassSub] != 2 {
		t.Errorf("subtractors@2 = %d, want 2 (paper Fig. 1)", res2[cdfg.ClassSub])
	}
	if err := s2.Validate(res2); err != nil {
		t.Error(err)
	}
	// With 3 steps one subtractor suffices.
	s3, res3, err := MinimizeSimple(g, 3)
	if err != nil {
		t.Fatalf("Minimize@3: %v", err)
	}
	if res3[cdfg.ClassSub] != 1 {
		t.Errorf("subtractors@3 = %d, want 1 (paper Fig. 2)", res3[cdfg.ClassSub])
	}
	if err := s3.Validate(res3); err != nil {
		t.Error(err)
	}
}

func TestModuloSchedulingSharesSlots(t *testing.T) {
	// Four independent adds, budget 4, II 2: modulo slots force 2 adders.
	g := cdfg.New("pipe")
	a := cdfg.MustAdd(g.AddInput("a"))
	b := cdfg.MustAdd(g.AddInput("b"))
	for i, name := range []string{"s1", "s2", "s3", "s4"} {
		id := cdfg.MustAdd(g.AddOp(cdfg.KindAdd, name, a, b))
		_ = i
		cdfg.MustAdd(g.AddOutput("o"+name, id))
	}
	s, res, err := Minimize(g, 4, 2)
	if err != nil {
		t.Fatalf("Minimize: %v", err)
	}
	if res[cdfg.ClassAdd] != 2 {
		t.Errorf("adders = %d, want 2 for II=2", res[cdfg.ClassAdd])
	}
	if err := s.Validate(res); err != nil {
		t.Error(err)
	}
	use := s.Usage()
	if use[cdfg.ClassAdd] > 2 {
		t.Errorf("usage = %d adders, want <= 2", use[cdfg.ClassAdd])
	}
}

func TestUsageNonPipelined(t *testing.T) {
	g := absDiff(t)
	s, _, err := MinimizeSimple(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Usage()
	if u[cdfg.ClassSub] != 2 || u[cdfg.ClassComp] != 1 || u[cdfg.ClassMux] != 1 {
		t.Errorf("usage = %v", u)
	}
}

func TestScheduleStringDeterministic(t *testing.T) {
	g := absDiff(t)
	s, _, err := MinimizeSimple(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	str := s.String()
	if !strings.Contains(str, "step 1") || !strings.Contains(str, "absdiff") {
		t.Errorf("String() = %q", str)
	}
	if str != s.String() {
		t.Error("String not deterministic")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	g := absDiff(t)
	s, res, err := MinimizeSimple(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Precedence violation: move mux before its inputs.
	bad := *s
	bad.Time = append(Times(nil), s.Time...)
	bad.Time[g.Lookup("m")] = 1
	if err := bad.Validate(res); err == nil {
		t.Error("precedence violation not caught")
	}
	// Budget violation.
	bad2 := *s
	bad2.Time = append(Times(nil), s.Time...)
	bad2.Time[g.Lookup("m")] = 9
	if err := bad2.Validate(res); err == nil {
		t.Error("budget violation not caught")
	}
	// Input scheduled late.
	bad3 := *s
	bad3.Time = append(Times(nil), s.Time...)
	bad3.Time[g.Lookup("a")] = 1
	if err := bad3.Validate(res); err == nil {
		t.Error("input at step 1 not caught")
	}
	// Resource violation: both subs in one step with 1 subtractor.
	s2, _, err := MinimizeSimple(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(Resources{cdfg.ClassSub: 1}); err == nil {
		t.Error("resource violation not caught")
	}
	// Shape violation.
	bad4 := *s
	bad4.II = 0
	if err := bad4.Validate(nil); err == nil {
		t.Error("II=0 not caught")
	}
}

func TestResourcesHelpers(t *testing.T) {
	r := Resources{cdfg.ClassAdd: 2, cdfg.ClassMul: 1}
	c := r.Clone()
	c[cdfg.ClassAdd] = 9
	if r[cdfg.ClassAdd] != 2 {
		t.Error("Clone is shallow")
	}
	if r.Total() != 3 {
		t.Errorf("Total = %d, want 3", r.Total())
	}
	if got := r.String(); !strings.Contains(got, "add=2") || !strings.Contains(got, "mul=1") {
		t.Errorf("String = %q", got)
	}
	if Resources(nil).String() != "(none)" {
		t.Errorf("empty String = %q", Resources(nil).String())
	}
	g := absDiff(t)
	min := MinimalResources(g)
	if min[cdfg.ClassSub] != 1 || min[cdfg.ClassAdd] != 0 {
		t.Errorf("MinimalResources = %v", min)
	}
}

// randomDAG mirrors the cdfg test helper.
func randomDAG(r *rand.Rand, n int) *cdfg.Graph {
	g := cdfg.New("rand")
	a := cdfg.MustAdd(g.AddInput("in0"))
	b := cdfg.MustAdd(g.AddInput("in1"))
	ids := []cdfg.NodeID{a, b}
	kinds := []cdfg.Kind{cdfg.KindAdd, cdfg.KindSub, cdfg.KindMul, cdfg.KindGt}
	for i := 0; i < n; i++ {
		x := ids[r.Intn(len(ids))]
		y := ids[r.Intn(len(ids))]
		k := kinds[r.Intn(len(kinds))]
		name := "n" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10))
		id := cdfg.MustAdd(g.AddOp(k, name, x, y))
		ids = append(ids, id)
	}
	cdfg.MustAdd(g.AddOutput("out", ids[len(ids)-1]))
	return g
}

func TestPropertyMinimizeProducesValidSchedules(t *testing.T) {
	f := func(seed int64, size, extra uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, int(size%30)+2)
		mb, err := MinBudget(g)
		if err != nil {
			return false
		}
		budget := mb + int(extra%4)
		s, res, err := MinimizeSimple(g, budget)
		if err != nil {
			return false
		}
		return s.Validate(res) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyScheduleWithinWindow(t *testing.T) {
	f := func(seed int64, size, extra uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, int(size%30)+2)
		mb, err := MinBudget(g)
		if err != nil {
			return false
		}
		budget := mb + int(extra%4)
		s, _, err := MinimizeSimple(g, budget)
		if err != nil {
			return false
		}
		w, err := AnalyzeWindow(g, budget)
		if err != nil {
			return false
		}
		for _, nd := range g.Nodes() {
			if !nd.IsOp() {
				continue
			}
			if s.Time[nd.ID] < w.ASAP[nd.ID] || s.Time[nd.ID] > w.ALAP[nd.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMoreStepsNeverMoreUnits(t *testing.T) {
	// Resource demand is monotonically non-increasing in the budget for
	// the total unit count found by Minimize on random DAGs. The greedy
	// list heuristic could in principle violate per-class monotonicity,
	// so we check the documented weaker invariant: the lower bound holds
	// and scheduling succeeds at every budget >= critical path.
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, int(size%25)+2)
		mb, err := MinBudget(g)
		if err != nil {
			return false
		}
		for b := mb; b < mb+3; b++ {
			if _, _, err := MinimizeSimple(g, b); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTimesClone(t *testing.T) {
	var nilT Times
	if nilT.Clone() != nil {
		t.Fatal("nil clone should stay nil")
	}
	orig := Times{1, 2, 3}
	c := orig.Clone()
	c[0] = 9
	if orig[0] != 1 || len(c) != 3 || c[1] != 2 {
		t.Fatalf("clone aliases: orig=%v clone=%v", orig, c)
	}
}
