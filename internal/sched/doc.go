// Package sched provides the scheduling substrate the power management pass
// runs on: ASAP/ALAP timing analysis, a resource-constrained list scheduler
// with least-slack priority, an iterative minimum-resource search (standing
// in for the HYPER scheduler of Rabaey et al.), and a modulo variant used
// for pipelined designs.
//
// Timing convention: every value has an availability time. Primary inputs
// and constants are available at time 0 (before the first control step).
// An operation executing in control step s (1-based) produces its value at
// time s. Free nodes (constant shifts, outputs) add no delay. A schedule
// with budget T requires every output value to be available by time T.
package sched
