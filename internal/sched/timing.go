package sched

import (
	"fmt"

	"repro/internal/cdfg"
)

// Times holds per-node availability times from a timing analysis.
// For an operation node the time is also the control step it executes in.
type Times []int

// Clone returns a copy of the time vector; a nil receiver stays nil.
func (t Times) Clone() Times {
	if t == nil {
		return nil
	}
	return append(Times(nil), t...)
}

// ASAP computes, for every node, the earliest availability time under
// dataflow and control edges. The returned slice is indexed by NodeID.
func ASAP(g *cdfg.Graph) (Times, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	t := make(Times, g.NumNodes())
	for _, id := range order {
		n := g.Node(id)
		ready := 0
		for _, p := range g.SchedPreds(id) {
			if t[p] > ready {
				ready = t[p]
			}
		}
		t[id] = ready + n.Latency()
	}
	return t, nil
}

// ALAP computes, for every node, the latest availability time such that all
// outputs are available by budget steps. It returns an error if the budget
// is smaller than the critical path (some node would get ALAP < ASAP is the
// caller's check; here only structural errors are reported).
func ALAP(g *cdfg.Graph, budget int) (Times, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	t := make(Times, g.NumNodes())
	for i := range t {
		t[i] = budget
	}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		limit := budget
		for _, s := range g.SchedSuccs(id) {
			cand := t[s] - g.Node(s).Latency()
			if cand < limit {
				limit = cand
			}
		}
		t[id] = limit
	}
	return t, nil
}

// Window holds the ASAP and ALAP times of one analysis.
type Window struct {
	ASAP Times
	ALAP Times
}

// Mobility returns ALAP-ASAP for the node: the scheduling slack.
func (w Window) Mobility(id cdfg.NodeID) int { return w.ALAP[id] - w.ASAP[id] }

// Feasible reports whether every node has ASAP <= ALAP.
func (w Window) Feasible() bool {
	for i := range w.ASAP {
		if w.ASAP[i] > w.ALAP[i] {
			return false
		}
	}
	return true
}

// AnalyzeWindow computes ASAP and ALAP for the given budget.
func AnalyzeWindow(g *cdfg.Graph, budget int) (Window, error) {
	asap, err := ASAP(g)
	if err != nil {
		return Window{}, err
	}
	alap, err := ALAP(g, budget)
	if err != nil {
		return Window{}, err
	}
	return Window{ASAP: asap, ALAP: alap}, nil
}

// MinBudget returns the smallest budget for which the graph (including its
// control edges) is schedulable: the longest path through the scheduling
// graph.
func MinBudget(g *cdfg.Graph) (int, error) {
	asap, err := ASAP(g)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, v := range asap {
		if v > max {
			max = v
		}
	}
	return max, nil
}

// Resources maps an operation class to the number of available execution
// units of that class.
type Resources map[cdfg.Class]int

// Clone returns a copy of the resource map.
func (r Resources) Clone() Resources {
	out := make(Resources, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// String formats the resource bag deterministically by class order.
func (r Resources) String() string {
	s := ""
	for c := cdfg.Class(0); int(c) < cdfg.NumClasses; c++ {
		if n, ok := r[c]; ok && n > 0 {
			if s != "" {
				s += " "
			}
			s += fmt.Sprintf("%s=%d", c, n)
		}
	}
	if s == "" {
		return "(none)"
	}
	return s
}

// Total returns the summed unit count.
func (r Resources) Total() int {
	t := 0
	for _, v := range r {
		t += v
	}
	return t
}

// MinimalResources returns one unit for every op class present in g: the
// smallest conceivable resource bag.
func MinimalResources(g *cdfg.Graph) Resources {
	res := make(Resources)
	for _, n := range g.Nodes() {
		if n.IsOp() {
			if res[n.Class()] == 0 {
				res[n.Class()] = 1
			}
		}
	}
	return res
}
