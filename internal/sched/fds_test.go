package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cdfg"
)

func TestForceDirectedAbsDiff(t *testing.T) {
	g := absDiff(t)
	s, err := ForceDirected(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(nil); err != nil {
		t.Fatal(err)
	}
	// With three steps FDS balances the two subtractions across steps:
	// one subtractor suffices.
	if u := s.Usage()[cdfg.ClassSub]; u != 1 {
		t.Errorf("FDS subtractor usage = %d, want 1", u)
	}
}

func TestForceDirectedRespectsBudget(t *testing.T) {
	g := absDiff(t)
	if _, err := ForceDirected(g, 1); err == nil {
		t.Error("budget below critical path accepted")
	}
	if _, err := ForceDirected(g, 0); err == nil {
		t.Error("budget 0 accepted")
	}
	s, err := ForceDirected(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Usage()[cdfg.ClassSub] != 2 {
		t.Error("critical-path schedule needs 2 subtractors")
	}
}

func TestForceDirectedHonorsControlEdges(t *testing.T) {
	g := absDiff(t)
	for _, name := range []string{"d1", "d2"} {
		if err := g.AddControlEdge(g.Lookup("g"), g.Lookup(name)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := ForceDirected(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.StepOf(g.Lookup("g")) != 1 {
		t.Errorf("comparator at %d, want 1", s.StepOf(g.Lookup("g")))
	}
	for _, name := range []string{"d1", "d2"} {
		if s.StepOf(g.Lookup(name)) < 2 {
			t.Errorf("%s scheduled before its control edge", name)
		}
	}
}

// TestForceDirectedBalancesLoad: a classic FDS case — six independent
// adds in 3 steps should spread 2 per step (list scheduling with no
// resource limit would greedily pile all six into step 1).
func TestForceDirectedBalancesLoad(t *testing.T) {
	g := cdfg.New("six")
	a := cdfg.MustAdd(g.AddInput("a"))
	b := cdfg.MustAdd(g.AddInput("b"))
	for _, name := range []string{"s1", "s2", "s3", "s4", "s5", "s6"} {
		id := cdfg.MustAdd(g.AddOp(cdfg.KindAdd, name, a, b))
		cdfg.MustAdd(g.AddOutput("o"+name, id))
	}
	s, err := ForceDirected(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u := s.Usage()[cdfg.ClassAdd]; u != 2 {
		t.Errorf("FDS adder usage = %d, want 2 (balanced)", u)
	}
	// Contrast: unconstrained list scheduling uses 6 adders in step 1.
	ls, err := List(g, 3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u := ls.Usage()[cdfg.ClassAdd]; u != 6 {
		t.Errorf("unconstrained list usage = %d, want 6", u)
	}
}

// TestPropertyForceDirectedValid: FDS produces precedence- and
// budget-correct schedules on random DAGs, and never needs more units than
// ops of the class.
func TestPropertyForceDirectedValid(t *testing.T) {
	f := func(seed int64, size, extra uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, int(size%20)+2)
		mb, err := MinBudget(g)
		if err != nil {
			return false
		}
		s, err := ForceDirected(g, mb+int(extra%4))
		if err != nil {
			return false
		}
		return s.Validate(nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFDSNeverWorseThanNaiveBound: FDS peak usage per class never
// exceeds what all-ASAP scheduling (the worst balanced case) would need.
func TestPropertyFDSNeverWorseThanNaiveBound(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, int(size%20)+2)
		mb, err := MinBudget(g)
		if err != nil {
			return false
		}
		budget := mb + 2
		fds, err := ForceDirected(g, budget)
		if err != nil {
			return false
		}
		asap, err := List(g, budget, budget, nil) // greedy ASAP-ish
		if err != nil {
			return false
		}
		fu, au := fds.Usage(), asap.Usage()
		for c, k := range fu {
			if k > au[c] && au[c] > 0 {
				// FDS may differ per class; only fail when
				// strictly worse in TOTAL.
				tf, ta := 0, 0
				for _, v := range fu {
					tf += v
				}
				for _, v := range au {
					ta += v
				}
				return tf <= ta
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
