package sched

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/cdfg"
)

// InfeasibleError reports that no schedule exists under the given budget
// and resources. When Class is valid (HasClass), adding units of that class
// may help; otherwise the budget itself is below the critical path. When
// HasNode is set, Node identifies an operation that missed its deadline —
// callers can relax constraints around it (the power management pass uses
// this to degrade gating gracefully under fixed resources).
type InfeasibleError struct {
	Budget   int
	Class    cdfg.Class
	HasClass bool
	Node     cdfg.NodeID
	HasNode  bool
	Reason   string
}

// Error implements the error interface.
func (e *InfeasibleError) Error() string {
	if e.HasClass {
		return fmt.Sprintf("sched: infeasible in %d steps: %s (%s units exhausted)", e.Budget, e.Reason, e.Class)
	}
	return fmt.Sprintf("sched: infeasible in %d steps: %s", e.Budget, e.Reason)
}

// List performs resource-constrained list scheduling of g into at most
// budget control steps with initiation interval ii (use ii == budget for a
// non-pipelined schedule). Priority is least ALAP first (least slack), ties
// broken by node ID for determinism. res limits the number of operations of
// each class executing in the same modulo-ii slot; classes absent from res
// are unlimited.
func List(g *cdfg.Graph, budget, ii int, res Resources) (*Schedule, error) {
	if budget < 1 {
		return nil, &InfeasibleError{Budget: budget, Reason: "budget must be at least 1"}
	}
	if ii < 1 || ii > budget {
		return nil, fmt.Errorf("sched: initiation interval %d outside [1,%d]", ii, budget)
	}
	w, err := AnalyzeWindow(g, budget)
	if err != nil {
		return nil, err
	}
	if !w.Feasible() {
		return nil, &InfeasibleError{Budget: budget, Reason: "critical path exceeds budget"}
	}

	n := g.NumNodes()
	time := make(Times, n)
	done := make([]bool, n)
	pending := make([]int, n) // unscheduled sched-preds
	for _, nd := range g.Nodes() {
		pending[nd.ID] = len(g.SchedPreds(nd.ID))
	}

	type readyOp struct {
		id    cdfg.NodeID
		ready int // earliest step it may execute
	}
	var ready []readyOp

	// settle marks a node done at time t and releases its successors.
	// Free successors (shifts, outputs) settle recursively.
	var settle func(id cdfg.NodeID, t int)
	settle = func(id cdfg.NodeID, t int) {
		time[id] = t
		done[id] = true
		for _, s := range g.SchedSuccs(id) {
			pending[s]--
			if pending[s] != 0 {
				continue
			}
			readyAt := 0
			for _, p := range g.SchedPreds(s) {
				if time[p] > readyAt {
					readyAt = time[p]
				}
			}
			sn := g.Node(s)
			if sn.Latency() == 0 {
				settle(s, readyAt)
			} else {
				ready = append(ready, readyOp{id: s, ready: readyAt + 1})
			}
		}
	}

	// Seed: nodes with no predecessors. Snapshot first — settling a seed
	// cascades and may drive other nodes' pending counts to zero, and
	// those are enqueued by settle itself; re-examining them here would
	// enqueue them twice.
	var seeds []cdfg.NodeID
	for _, nd := range g.Nodes() {
		if pending[nd.ID] == 0 {
			seeds = append(seeds, nd.ID)
		}
	}
	for _, id := range seeds {
		if done[id] {
			continue
		}
		if g.Node(id).Latency() == 0 {
			settle(id, 0)
		} else {
			ready = append(ready, readyOp{id: id, ready: 1})
		}
	}

	// slotUse[slot][class] tracks units occupied in each modulo slot.
	slotUse := make([]map[cdfg.Class]int, ii)
	for i := range slotUse {
		slotUse[i] = make(map[cdfg.Class]int)
	}

	scheduledOps := 0
	totalOps := 0
	for _, nd := range g.Nodes() {
		if nd.IsOp() {
			totalOps++
		}
	}

	for t := 1; t <= budget && scheduledOps < totalOps; t++ {
		// Deterministic candidate order: least ALAP, then ID.
		slices.SortFunc(ready, func(a, b readyOp) int {
			if w.ALAP[a.id] != w.ALAP[b.id] {
				return cmp.Compare(w.ALAP[a.id], w.ALAP[b.id])
			}
			return cmp.Compare(a.id, b.id)
		})
		slot := (t - 1) % ii
		// Iterate over a snapshot: settle() appends ops that become
		// ready during this step to the (reset) ready slice.
		snapshot := ready
		ready = nil
		var remaining []readyOp
		for _, cand := range snapshot {
			if cand.ready > t {
				remaining = append(remaining, cand)
				continue
			}
			cls := g.Node(cand.id).Class()
			limit, limited := res[cls]
			if limited && slotUse[slot][cls] >= limit {
				if w.ALAP[cand.id] <= t {
					// This op must run now but cannot: the
					// class is the bottleneck.
					return nil, &InfeasibleError{
						Budget:   budget,
						Class:    cls,
						HasClass: true,
						Node:     cand.id,
						HasNode:  true,
						Reason:   fmt.Sprintf("op %q missed its deadline at step %d", g.Node(cand.id).Name, t),
					}
				}
				remaining = append(remaining, cand)
				continue
			}
			slotUse[slot][cls]++
			scheduledOps++
			settle(cand.id, t)
		}
		ready = append(ready, remaining...)
	}

	if scheduledOps != totalOps {
		// Report a representative blocked op (smallest ID for
		// determinism) so callers can relax constraints around it.
		e := &InfeasibleError{
			Budget: budget,
			Reason: fmt.Sprintf("%d of %d ops unscheduled", totalOps-scheduledOps, totalOps),
		}
		for _, cand := range ready {
			if !e.HasNode || cand.id < e.Node {
				e.Node = cand.id
				e.HasNode = true
				e.Class = g.Node(cand.id).Class()
				e.HasClass = true
			}
		}
		return nil, e
	}

	s := &Schedule{Graph: g, Steps: budget, II: ii, Time: time}
	return s, nil
}

// lowerBound returns the per-class minimum feasible unit counts for the
// given initiation interval: ceil(#ops(class) / ii).
func lowerBound(g *cdfg.Graph, ii int) Resources {
	counts := make(map[cdfg.Class]int)
	for _, nd := range g.Nodes() {
		if nd.IsOp() {
			counts[nd.Class()]++
		}
	}
	res := make(Resources, len(counts))
	for c, k := range counts {
		res[c] = (k + ii - 1) / ii
	}
	return res
}

// Minimize finds a schedule of g in at most budget steps (initiation
// interval ii) using as few execution units as the list scheduler can
// manage, mimicking HYPER's minimum-hardware goal for a fixed throughput.
// It starts from the per-class lower bound and adds one unit of the
// blocking class until scheduling succeeds.
func Minimize(g *cdfg.Graph, budget, ii int) (*Schedule, Resources, error) {
	res := lowerBound(g, ii)
	maxUnits := 0
	for _, nd := range g.Nodes() {
		if nd.IsOp() {
			maxUnits++
		}
	}
	for iter := 0; iter <= maxUnits+1; iter++ {
		s, err := List(g, budget, ii, res)
		if err == nil {
			return s, res, nil
		}
		ie, ok := err.(*InfeasibleError)
		if !ok {
			return nil, nil, err
		}
		if !ie.HasClass {
			return nil, nil, err
		}
		res[ie.Class]++
	}
	return nil, nil, fmt.Errorf("sched: minimize failed to converge for %q", g.Name)
}

// MinimizeSimple is Minimize with ii == budget (non-pipelined).
func MinimizeSimple(g *cdfg.Graph, budget int) (*Schedule, Resources, error) {
	return Minimize(g, budget, budget)
}
