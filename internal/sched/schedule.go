package sched

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cdfg"
)

// Schedule assigns every node of a graph an availability time; operation
// nodes execute in the control step equal to their time. A Schedule may be
// pipelined, in which case II (initiation interval) is the number of steps
// between consecutive samples and resources are shared modulo II.
type Schedule struct {
	// Graph is the scheduled graph (with any control edges that
	// constrained the schedule).
	Graph *cdfg.Graph
	// Steps is the schedule length in control steps (the latency).
	Steps int
	// II is the initiation interval; II == Steps for non-pipelined
	// schedules.
	II int
	// Time is the per-node availability time (execution step for ops).
	Time Times
}

// StepOf returns the control step in which node id executes. For free
// nodes it returns the time their value becomes available.
func (s *Schedule) StepOf(id cdfg.NodeID) int { return s.Time[id] }

// OpsInStep returns the operation nodes executing in control step t, in ID
// order.
func (s *Schedule) OpsInStep(t int) []cdfg.NodeID {
	var out []cdfg.NodeID
	for _, n := range s.Graph.Nodes() {
		if n.IsOp() && s.Time[n.ID] == t {
			out = append(out, n.ID)
		}
	}
	return out
}

// Usage returns, per class, the maximum number of simultaneously executing
// operations, honoring modulo overlap when II < Steps. This is the number
// of execution units a naive (non-sharing) binding needs.
func (s *Schedule) Usage() Resources {
	// perSlot[slot][class] counts ops in modulo slot.
	perSlot := make([]map[cdfg.Class]int, s.II)
	for i := range perSlot {
		perSlot[i] = make(map[cdfg.Class]int)
	}
	for _, n := range s.Graph.Nodes() {
		if !n.IsOp() {
			continue
		}
		slot := (s.Time[n.ID] - 1) % s.II
		perSlot[slot][n.Class()]++
	}
	out := make(Resources)
	for _, m := range perSlot {
		for c, k := range m {
			if k > out[c] {
				out[c] = k
			}
		}
	}
	return out
}

// Validate checks that the schedule respects precedence (data and control
// edges), the step budget, per-step resource limits (modulo II), and that
// free nodes are placed at their ready time.
func (s *Schedule) Validate(res Resources) error {
	g := s.Graph
	if len(s.Time) != g.NumNodes() {
		return fmt.Errorf("sched: schedule covers %d nodes, graph has %d", len(s.Time), g.NumNodes())
	}
	if s.II <= 0 || s.Steps <= 0 || s.II > s.Steps {
		return fmt.Errorf("sched: bad shape steps=%d ii=%d", s.Steps, s.II)
	}
	for _, n := range g.Nodes() {
		tn := s.Time[n.ID]
		switch {
		case n.Kind == cdfg.KindInput || n.Kind == cdfg.KindConst:
			if tn != 0 {
				return fmt.Errorf("sched: %s %q scheduled at %d, want 0", n.Kind, n.Name, tn)
			}
		case n.IsOp():
			if tn < 1 || tn > s.Steps {
				return fmt.Errorf("sched: op %q at step %d outside [1,%d]", n.Name, tn, s.Steps)
			}
		}
		ready := 0
		for _, p := range g.SchedPreds(n.ID) {
			if s.Time[p] > ready {
				ready = s.Time[p]
			}
		}
		if tn < ready+n.Latency() {
			return fmt.Errorf("sched: %q at %d violates readiness %d+%d", n.Name, tn, ready, n.Latency())
		}
		if n.Latency() == 0 && n.IsOp() {
			return fmt.Errorf("sched: node %q is a zero-latency op", n.Name)
		}
	}
	if res != nil {
		perSlot := make([]map[cdfg.Class]int, s.II)
		for i := range perSlot {
			perSlot[i] = make(map[cdfg.Class]int)
		}
		for _, n := range g.Nodes() {
			if !n.IsOp() {
				continue
			}
			slot := (s.Time[n.ID] - 1) % s.II
			perSlot[slot][n.Class()]++
			if limit, ok := res[n.Class()]; ok && perSlot[slot][n.Class()] > limit {
				return fmt.Errorf("sched: step slot %d uses %d %s units, limit %d",
					slot+1, perSlot[slot][n.Class()], n.Class(), limit)
			}
		}
	}
	return nil
}

// String renders the schedule as a step-by-step table, one line per control
// step listing the operations executing in it. Deterministic.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %q: %d steps", s.Graph.Name, s.Steps)
	if s.II != s.Steps {
		fmt.Fprintf(&b, " (II=%d)", s.II)
	}
	b.WriteByte('\n')
	for t := 1; t <= s.Steps; t++ {
		ops := s.OpsInStep(t)
		names := make([]string, 0, len(ops))
		for _, id := range ops {
			n := s.Graph.Node(id)
			names = append(names, fmt.Sprintf("%s(%s)", n.Name, n.Kind))
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  step %d: %s\n", t, strings.Join(names, " "))
	}
	return b.String()
}
