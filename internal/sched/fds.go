package sched

import (
	"fmt"
	"math"

	"repro/internal/cdfg"
)

// ForceDirected implements force-directed scheduling (Paulin & Knight),
// the algorithm family HYPER's resource-minimizing scheduler descends
// from. For a fixed latency budget it balances the expected concurrency of
// each operation class across control steps, which minimizes the peak
// number of execution units without explicit resource constraints.
//
// The implementation is the classic iterative scheme: compute time frames
// (ASAP/ALAP under the decisions made so far), build per-class
// distribution graphs, evaluate self force plus first-order
// predecessor/successor forces for every (operation, step) candidate, and
// commit the minimum-force assignment until every operation is fixed.
func ForceDirected(g *cdfg.Graph, budget int) (*Schedule, error) {
	if budget < 1 {
		return nil, &InfeasibleError{Budget: budget, Reason: "budget must be at least 1"}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	lower := make([]int, n) // availability-time lower bounds
	upper := make([]int, n)
	for i := range upper {
		upper[i] = budget
	}

	// frames computes availability windows under the current bounds.
	frames := func() (asap, alap Times, err error) {
		asap = make(Times, n)
		for _, id := range order {
			nd := g.Node(id)
			ready := 0
			for _, p := range g.SchedPreds(id) {
				if asap[p] > ready {
					ready = asap[p]
				}
			}
			t := ready + nd.Latency()
			if t < lower[id] {
				t = lower[id]
			}
			asap[id] = t
		}
		alap = make(Times, n)
		for i := range alap {
			alap[i] = budget
		}
		for i := len(order) - 1; i >= 0; i-- {
			id := order[i]
			limit := budget
			for _, s := range g.SchedSuccs(id) {
				cand := alap[s] - g.Node(s).Latency()
				if cand < limit {
					limit = cand
				}
			}
			if limit > upper[id] {
				limit = upper[id]
			}
			alap[id] = limit
		}
		for _, id := range order {
			if asap[id] > alap[id] {
				return nil, nil, &InfeasibleError{
					Budget: budget,
					Reason: fmt.Sprintf("op %q has empty time frame", g.Node(id).Name),
				}
			}
		}
		return asap, alap, nil
	}

	var ops []cdfg.NodeID
	for _, nd := range g.Nodes() {
		if nd.IsOp() {
			ops = append(ops, nd.ID)
		}
	}
	fixed := make(map[cdfg.NodeID]bool, len(ops))

	for len(fixed) < len(ops) {
		asap, alap, err := frames()
		if err != nil {
			return nil, err
		}
		// Distribution graphs: expected ops per class per step.
		dg := make(map[cdfg.Class][]float64)
		for _, id := range ops {
			cls := g.Node(id).Class()
			if dg[cls] == nil {
				dg[cls] = make([]float64, budget+1)
			}
			width := alap[id] - asap[id] + 1
			p := 1.0 / float64(width)
			for t := asap[id]; t <= alap[id]; t++ {
				dg[cls][t] += p
			}
		}
		meanDG := func(cls cdfg.Class, lo, hi int) float64 {
			if lo > hi {
				return 0
			}
			sum := 0.0
			for t := lo; t <= hi; t++ {
				sum += dg[cls][t]
			}
			return sum / float64(hi-lo+1)
		}

		bestOp := cdfg.InvalidNode
		bestStep := 0
		bestForce := math.Inf(1)
		for _, id := range ops {
			if fixed[id] {
				continue
			}
			cls := g.Node(id).Class()
			base := meanDG(cls, asap[id], alap[id])
			for t := asap[id]; t <= alap[id]; t++ {
				force := dg[cls][t] - base
				// First-order neighbor forces: committing id
				// to t clips direct successors' frames to
				// [t+1, ...] and predecessors' to [..., t-1].
				for _, s := range g.SchedSuccs(id) {
					sn := g.Node(s)
					if !sn.IsOp() || fixed[s] {
						continue
					}
					lo := asap[s]
					if t+1 > lo {
						lo = t + 1
					}
					force += meanDG(sn.Class(), lo, alap[s]) -
						meanDG(sn.Class(), asap[s], alap[s])
				}
				for _, p := range g.SchedPreds(id) {
					pn := g.Node(p)
					if !pn.IsOp() || fixed[p] {
						continue
					}
					hi := alap[p]
					if t-1 < hi {
						hi = t - 1
					}
					force += meanDG(pn.Class(), asap[p], hi) -
						meanDG(pn.Class(), asap[p], alap[p])
				}
				if force < bestForce-1e-12 ||
					(math.Abs(force-bestForce) <= 1e-12 && (id < bestOp || (id == bestOp && t < bestStep))) {
					bestForce = force
					bestOp = id
					bestStep = t
				}
			}
		}
		if bestOp == cdfg.InvalidNode {
			return nil, fmt.Errorf("sched: force-directed selection failed")
		}
		lower[bestOp] = bestStep
		upper[bestOp] = bestStep
		fixed[bestOp] = true
	}

	asap, _, err := frames()
	if err != nil {
		return nil, err
	}
	s := &Schedule{Graph: g, Steps: budget, II: budget, Time: asap}
	if err := s.Validate(nil); err != nil {
		return nil, fmt.Errorf("sched: force-directed produced invalid schedule: %w", err)
	}
	return s, nil
}
