package core

import (
	"testing"

	"repro/internal/cdfg"
)

// TestBranchCandidates: |a-b| has exactly one mux with both branches
// gateable — true gates d1, false gates d2 — and the enumeration is
// deterministic and independent of inserted control edges.
func TestBranchCandidates(t *testing.T) {
	g := compile(t, absDiffSrc)
	cands := BranchCandidates(g)
	if len(cands) != 2 {
		t.Fatalf("candidates = %+v, want 2", cands)
	}
	sel := g.Lookup("g")
	if !cands[0].WhenTrue || cands[1].WhenTrue {
		t.Fatalf("branch order = %+v, want true before false", cands)
	}
	for _, c := range cands {
		if c.Mux != cands[0].Mux || c.Sel != sel {
			t.Fatalf("candidate %+v: want shared mux and select %d", c, sel)
		}
		if len(c.Members) != 1 {
			t.Fatalf("candidate %+v: want exactly one member", c)
		}
	}
	if g.Node(cands[0].Members[0]).Name != "d1" || g.Node(cands[1].Members[0]).Name != "d2" {
		t.Fatalf("members = %v / %v, want d1 / d2", cands[0].Members, cands[1].Members)
	}

	// The sets depend only on dataflow: a serializing control edge must
	// not change the enumeration.
	gc := g.Clone()
	if err := gc.AddControlEdge(sel, gc.Lookup("d1")); err != nil {
		t.Fatal(err)
	}
	after := BranchCandidates(gc)
	if len(after) != len(cands) || after[0].Members[0] != cands[0].Members[0] {
		t.Fatalf("control edge changed candidates: %+v vs %+v", after, cands)
	}
}

func TestGatedTops(t *testing.T) {
	g := compile(t, absDiffSrc)
	for _, c := range BranchCandidates(g) {
		tops := GatedTops(g, cdfg.NewNodeSet(c.Members...))
		// Single-member cones are their own tops.
		if len(tops) != 1 || tops[0] != c.Members[0] {
			t.Fatalf("tops of %v = %v", c.Members, tops)
		}
	}
}
