package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cdfg"
	"repro/internal/sched"
	"repro/internal/silage"
	"repro/internal/sim"
)

const absDiffSrc = `
func absdiff(a: num<8>, b: num<8>) out: num<8> =
begin
    g   = a > b;
    d1  = a - b;
    d2  = b - a;
    out = if g -> d1 || d2 fi;
end
`

func compile(t *testing.T, src string) *cdfg.Graph {
	t.Helper()
	d, err := silage.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return d.Graph
}

// TestFigure1TwoStepsNoPM: with only two control steps the schedule is
// unique and no power management is possible (paper Fig. 1).
func TestFigure1TwoStepsNoPM(t *testing.T) {
	g := compile(t, absDiffSrc)
	r, err := Schedule(g, Config{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumManaged() != 0 {
		t.Errorf("managed muxes = %d, want 0", r.NumManaged())
	}
	if len(r.Guards) != 0 {
		t.Errorf("guards = %v, want none", r.Guards)
	}
	// The schedule matches the traditional one: both subs in step 1.
	if r.Schedule.StepOf(r.Graph.Lookup("d1")) != 1 || r.Schedule.StepOf(r.Graph.Lookup("d2")) != 1 {
		t.Error("two-step schedule should run both subtractions in step 1")
	}
	if r.Resources[cdfg.ClassSub] != 2 {
		t.Errorf("subtractors = %d, want 2", r.Resources[cdfg.ClassSub])
	}
}

// TestFigure2ThreeStepsPM: with three control steps the comparison is
// scheduled first and both subtractions are gated (paper Fig. 2(b)).
func TestFigure2ThreeStepsPM(t *testing.T) {
	g := compile(t, absDiffSrc)
	r, err := Schedule(g, Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumManaged() != 1 {
		t.Fatalf("managed muxes = %d, want 1", r.NumManaged())
	}
	mm := r.Managed[0]
	wg := r.Graph
	if wg.Node(mm.Mux).Name != "out" {
		t.Errorf("managed mux = %q", wg.Node(mm.Mux).Name)
	}
	if wg.Node(mm.Sel).Name != "g" {
		t.Errorf("control source = %q, want comparator g", wg.Node(mm.Sel).Name)
	}
	if len(mm.GatedTrue) != 1 || len(mm.GatedFalse) != 1 {
		t.Fatalf("gated sets: true=%d false=%d, want 1/1", len(mm.GatedTrue), len(mm.GatedFalse))
	}
	if wg.Node(mm.GatedTrue[0]).Name != "d1" || wg.Node(mm.GatedFalse[0]).Name != "d2" {
		t.Error("wrong gated assignments")
	}
	// Schedule shape: comparator step 1, subs step 2, mux step 3.
	if s := r.Schedule.StepOf(wg.Lookup("g")); s != 1 {
		t.Errorf("comparator at step %d, want 1", s)
	}
	for _, name := range []string{"d1", "d2"} {
		if s := r.Schedule.StepOf(wg.Lookup(name)); s != 2 {
			t.Errorf("%s at step %d, want 2", name, s)
		}
	}
	if s := r.Schedule.StepOf(wg.Lookup("out")); s != 3 {
		t.Errorf("mux at step %d, want 3", s)
	}
	// Two subtractors, as in the paper's preferred Fig. 2(b) variant.
	if r.Resources[cdfg.ClassSub] != 2 {
		t.Errorf("subtractors = %d, want 2", r.Resources[cdfg.ClassSub])
	}
	// Control edges present: g -> d1, g -> d2.
	if len(wg.ControlEdges()) != 2 {
		t.Errorf("control edges = %d, want 2", len(wg.ControlEdges()))
	}
}

// TestFigure2OneSubtractorPartialGating: with one subtractor the first
// subtraction must issue before the condition is known; only the second is
// gated (paper §II.B).
func TestFigure2OneSubtractorPartialGating(t *testing.T) {
	g := compile(t, absDiffSrc)
	r, err := Schedule(g, Config{
		Budget:    3,
		Resources: sched.Resources{cdfg.ClassSub: 1, cdfg.ClassComp: 1, cdfg.ClassMux: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wg := r.Graph
	if r.NumManaged() != 1 {
		t.Fatalf("managed muxes = %d, want 1", r.NumManaged())
	}
	gated := r.GatedOps()
	if len(gated) != 1 {
		t.Fatalf("gated ops = %d, want 1 (one sub released)", len(gated))
	}
	// One sub executes unconditionally in step 1, the gated one later.
	d1, d2 := wg.Lookup("d1"), wg.Lookup("d2")
	var free, kept cdfg.NodeID
	if gated.Contains(d1) {
		kept, free = d1, d2
	} else if gated.Contains(d2) {
		kept, free = d2, d1
	} else {
		t.Fatal("neither sub gated")
	}
	if s := r.Schedule.StepOf(free); s != 1 {
		t.Errorf("ungated sub at step %d, want 1", s)
	}
	if s := r.Schedule.StepOf(kept); s < 2 {
		t.Errorf("gated sub at step %d, want >= 2", s)
	}
	if err := r.Schedule.Validate(sched.Resources{cdfg.ClassSub: 1}); err != nil {
		t.Error(err)
	}
}

// TestPMPreservesSemantics: the gated schedule computes the same outputs as
// the reference interpreter for all inputs.
func TestPMPreservesSemantics(t *testing.T) {
	g := compile(t, absDiffSrc)
	r, err := Schedule(g, Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		in := map[string]int64{"a": int64(a), "b": int64(b)}
		ref, err := sim.Evaluate(g, in, sim.Options{Width: 8})
		if err != nil {
			return false
		}
		got, err := sim.ExecuteScheduled(r.Schedule, r.Guards, in, sim.Options{Width: 8})
		if err != nil {
			return false
		}
		return got.Outputs["out:out"] == ref["out:out"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPMShutsDownOneSub: in the 3-step PM schedule exactly one subtraction
// executes per sample.
func TestPMShutsDownOneSub(t *testing.T) {
	g := compile(t, absDiffSrc)
	r, err := Schedule(g, Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range []map[string]int64{{"a": 5, "b": 2}, {"a": 2, "b": 5}, {"a": 3, "b": 3}} {
		res, err := sim.ExecuteScheduled(r.Schedule, r.Guards, in, sim.Options{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		if n := res.NumExecuted(r.Graph, cdfg.ClassSub); n != 1 {
			t.Errorf("input %v: %d subs executed, want 1", in, n)
		}
	}
}

// nestedSrc has an inner conditional entirely inside one branch of an
// outer conditional.
const nestedSrc = `
func nest(a: num<8>, b: num<8>, x: num<8>) o: num<8> =
begin
    outer = a > b;
    t1    = a - b;
    inner = t1 > 4;
    t2    = t1 * 3;
    t3    = t1 + 7;
    m     = if inner -> t2 || t3 fi;
    o     = if outer -> m || x fi;
end
`

func TestNestedConditionalsGating(t *testing.T) {
	g := compile(t, nestedSrc)
	cp, _ := g.CriticalPath()
	// Critical path: t1 -> inner -> t2/t3 ... m -> o.
	r, err := Schedule(g, Config{Budget: cp + 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumManaged() != 2 {
		t.Fatalf("managed = %d, want 2 (outer and inner)", r.NumManaged())
	}
	wg := r.Graph
	// t2 and t3 carry two guards: outer (true branch) and inner.
	for _, name := range []string{"t2", "t3"} {
		if len(r.Guards[wg.Lookup(name)]) != 2 {
			t.Errorf("%s guards = %v, want 2", name, r.Guards[wg.Lookup(name)])
		}
	}
	// t1 and inner carry one guard (outer only).
	for _, name := range []string{"t1", "inner"} {
		if len(r.Guards[wg.Lookup(name)]) != 1 {
			t.Errorf("%s guards = %v, want 1", name, r.Guards[wg.Lookup(name)])
		}
	}
	// Semantics preserved over random inputs.
	f := func(a, b, x uint8) bool {
		in := map[string]int64{"a": int64(a), "b": int64(b), "x": int64(x)}
		ref, err := sim.Evaluate(g, in, sim.Options{Width: 8})
		if err != nil {
			return false
		}
		got, err := sim.ExecuteScheduled(r.Schedule, r.Guards, in, sim.Options{Width: 8})
		if err != nil {
			return false
		}
		return got.Outputs["out:o"] == ref["out:o"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSharedNodeNotGated: a node feeding both branches must never be gated.
func TestSharedNodeNotGated(t *testing.T) {
	src := `
func shared(a: num<8>, b: num<8>) o: num<8> =
begin
    c  = a > b;
    s  = a + b;
    t1 = s - 1;
    t2 = s - 2;
    o  = if c -> t1 || t2 fi;
end
`
	g := compile(t, src)
	r, err := Schedule(g, Config{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.GatedOps().Contains(r.Graph.Lookup("s")) {
		t.Error("shared adder s gated despite feeding both branches")
	}
	for _, name := range []string{"t1", "t2"} {
		if !r.GatedOps().Contains(r.Graph.Lookup(name)) {
			t.Errorf("%s not gated", name)
		}
	}
}

// TestFanoutEscapeNotGated: a node whose value escapes to another output
// must never be gated.
func TestFanoutEscapeNotGated(t *testing.T) {
	src := `
func escape(a: num<8>, b: num<8>) o: num<8>, esc: num<8> =
begin
    c   = a > b;
    t1  = a - b;
    t2  = t1 * 2;
    esc = t1 + 1;
    o   = if c -> t2 || b fi;
end
`
	g := compile(t, src)
	r, err := Schedule(g, Config{Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.GatedOps().Contains(r.Graph.Lookup("t1")) {
		t.Error("t1 gated despite escaping through esc")
	}
	if !r.GatedOps().Contains(r.Graph.Lookup("t2")) {
		t.Error("t2 should be gated (exclusive to the true branch)")
	}
}

// TestControlConeNotGated: nodes feeding the select must not be gated.
func TestControlConeNotGated(t *testing.T) {
	src := `
func ctrlcone(a: num<8>, b: num<8>) o: num<8> =
begin
    s = a - b;
    c = s > 4;
    t = s * 2;
    u = a + 1;
    o = if c -> t || u fi;
end
`
	g := compile(t, src)
	r, err := Schedule(g, Config{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.GatedOps().Contains(r.Graph.Lookup("s")) {
		t.Error("s gated despite feeding the select")
	}
	// t reads s (shared with control cone) but is itself exclusive.
	if !r.GatedOps().Contains(r.Graph.Lookup("t")) {
		t.Error("t should be gated")
	}
	if !r.GatedOps().Contains(r.Graph.Lookup("u")) {
		t.Error("u should be gated")
	}
}

// TestTightBudgetRevertsMux: when serialization would violate the budget
// the mux is left unmanaged (paper Fig. 3 step 7).
func TestTightBudgetRevertsMux(t *testing.T) {
	// Chain: s(1) c(2) | branch t needs steps after c -> t at 3, mux at
	// 4. With budget 3 the mux must execute at 3 and t at 2 <= before c:
	// infeasible, so no PM.
	src := `
func tight(a: num<8>, b: num<8>) o: num<8> =
begin
    s = a - b;
    c = s > 4;
    t = a * 2;
    u = b + 3;
    o = if c -> t || u fi;
end
`
	g := compile(t, src)
	r3, err := Schedule(g, Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r3.NumManaged() != 0 {
		t.Errorf("budget 3: managed = %d, want 0", r3.NumManaged())
	}
	if len(r3.Graph.ControlEdges()) != 0 {
		t.Error("budget 3: control edges not reverted")
	}
	r4, err := Schedule(g, Config{Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r4.NumManaged() != 1 {
		t.Errorf("budget 4: managed = %d, want 1", r4.NumManaged())
	}
}

func TestBudgetBelowCriticalPathRejected(t *testing.T) {
	g := compile(t, absDiffSrc)
	if _, err := Schedule(g, Config{Budget: 1}); err == nil {
		t.Error("budget 1 accepted for CP-2 graph")
	}
	if _, err := Schedule(g, Config{Budget: 0}); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := Schedule(g, Config{Budget: 3, II: 9}); err == nil {
		t.Error("II > budget accepted")
	}
}

func TestInputDrivenSelect(t *testing.T) {
	// A select driven directly by a primary input: gating needs no
	// serialization at all (the condition is known at step 0).
	src := `
func insel(a: num<8>, b: num<8>, pick: bool) o: num<8> =
begin
    t1 = a * 3;
    t2 = b + 1;
    o  = if pick -> t1 || t2 fi;
end
`
	g := compile(t, src)
	r, err := Schedule(g, Config{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumManaged() != 1 {
		t.Fatalf("managed = %d, want 1", r.NumManaged())
	}
	if !r.GatedOps().Contains(r.Graph.Lookup("t1")) || !r.GatedOps().Contains(r.Graph.Lookup("t2")) {
		t.Error("both branch ops should be gated")
	}
}

func TestBaselineMatchesTraditional(t *testing.T) {
	g := compile(t, absDiffSrc)
	s, res, err := Baseline(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res[cdfg.ClassSub] != 1 {
		t.Errorf("baseline subtractors = %d, want 1 (paper Fig. 2(a))", res[cdfg.ClassSub])
	}
	if err := s.Validate(res); err != nil {
		t.Error(err)
	}
}

func TestOrderStrategiesRun(t *testing.T) {
	g := compile(t, nestedSrc)
	cp, _ := g.CriticalPath()
	for _, o := range []Order{OrderOutputsFirst, OrderInputsFirst, OrderGreedyWeight, OrderExhaustive} {
		r, err := Schedule(g, Config{Budget: cp + 2, Order: o})
		if err != nil {
			t.Errorf("%v: %v", o, err)
			continue
		}
		if r.Order != o {
			t.Errorf("result order = %v, want %v", r.Order, o)
		}
		if o.String() == "" {
			t.Error("empty order name")
		}
	}
	if Order(99).String() == "" {
		t.Error("unknown order should still print")
	}
}

// TestExhaustiveAtLeastAsGoodAsGreedy: on a circuit where mux selection
// conflicts, the exhaustive order must reach at least the outputs-first
// savings (paper §IV.A motivation).
func TestExhaustiveAtLeastAsGoodAsGreedy(t *testing.T) {
	// Two muxes compete for slack: m1 (closer to the output) gates a
	// cheap op, m2 gates an expensive multiply. Budget is tight enough
	// that only one can be managed.
	src := `
func conflict(a: num<8>, b: num<8>, x: num<8>) o1: num<8>, o2: num<8> =
begin
    c1 = a > b;
    c2 = a > x;
    t1 = a + 1;
    t2 = a * b;
    o1 = if c1 -> t1 || b fi;
    o2 = if c2 -> t2 || x fi;
end
`
	g := compile(t, src)
	weights := map[cdfg.Class]float64{
		cdfg.ClassMux: 1, cdfg.ClassComp: 4, cdfg.ClassAdd: 3,
		cdfg.ClassSub: 3, cdfg.ClassMul: 20,
	}
	base, err := Schedule(g, Config{Budget: 3, Order: OrderOutputsFirst, Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Schedule(g, Config{Budget: 3, Order: OrderExhaustive, Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	sBase := savingsMetric(base.Graph, base.Guards, weights)
	sEx := savingsMetric(ex.Graph, ex.Guards, weights)
	if sEx < sBase {
		t.Errorf("exhaustive savings %.2f < outputs-first %.2f", sEx, sBase)
	}
}

func TestInputGraphNotMutated(t *testing.T) {
	g := compile(t, absDiffSrc)
	before := g.NumNodes()
	if _, err := Schedule(g, Config{Budget: 3}); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != before || len(g.ControlEdges()) != 0 {
		t.Error("Schedule mutated the input graph")
	}
}

func TestManagedMuxHelpers(t *testing.T) {
	mm := ManagedMux{GatedTrue: []cdfg.NodeID{1, 2}, GatedFalse: []cdfg.NodeID{3}}
	if mm.GatedCount() != 3 {
		t.Errorf("GatedCount = %d", mm.GatedCount())
	}
}

// TestPipelinedPMSchedule: pipelining (II < budget) leaves throughput
// intact while creating slack for power management (paper §IV.B).
func TestPipelinedPMSchedule(t *testing.T) {
	// Critical path 3; at budget 3 (one sample per 3 steps) there is no
	// slack to manage the mux gating the multiply.
	src := `
func pipe(a: num<8>, b: num<8>) o: num<8> =
begin
    s  = a + b;
    c  = s > 9;
    t1 = s * 3;
    t2 = s - 1;
    o  = if c -> t1 || t2 fi;
end
`
	g := compile(t, src)
	r1, err := Schedule(g, Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.NumManaged() != 0 {
		t.Fatalf("budget 3: managed = %d, want 0", r1.NumManaged())
	}
	// Two-stage pipeline: latency 6, initiation interval 3. Same
	// throughput, slack appears, the mux becomes manageable.
	r2, err := Schedule(g, Config{Budget: 6, II: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumManaged() != 1 {
		t.Errorf("pipelined: managed = %d, want 1", r2.NumManaged())
	}
	if r2.Schedule.II != 3 || r2.Schedule.Steps != 6 {
		t.Errorf("pipelined schedule shape: steps=%d ii=%d", r2.Schedule.Steps, r2.Schedule.II)
	}
	if err := r2.Schedule.Validate(r2.Resources); err != nil {
		t.Error(err)
	}
}

// TestRelaxationPreservesSemantics: partial gating under fixed resources
// still computes correct outputs, and at least one op remains gated.
func TestRelaxationPreservesSemantics(t *testing.T) {
	g := compile(t, absDiffSrc)
	r, err := Schedule(g, Config{
		Budget:    3,
		Resources: sched.Resources{cdfg.ClassSub: 1, cdfg.ClassComp: 1, cdfg.ClassMux: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		in := map[string]int64{"a": int64(a), "b": int64(b)}
		ref, err := sim.Evaluate(g, in, sim.Options{Width: 8})
		if err != nil {
			return false
		}
		got, err := sim.ExecuteScheduled(r.Schedule, r.Guards, in, sim.Options{Width: 8})
		if err != nil {
			return false
		}
		return got.Outputs["out:out"] == ref["out:out"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPMSemanticsOnRandomConditionals builds random two-level
// conditional programs and verifies output equivalence of the PM schedule.
func TestPropertyPMSemanticsOnRandomConditionals(t *testing.T) {
	build := func(r *rand.Rand) *cdfg.Graph {
		g := cdfg.New("rnd")
		a := cdfg.MustAdd(g.AddInput("a"))
		b := cdfg.MustAdd(g.AddInput("b"))
		kinds := []cdfg.Kind{cdfg.KindAdd, cdfg.KindSub, cdfg.KindMul}
		mk := func(name string, depth int) cdfg.NodeID {
			x, y := a, b
			if r.Intn(2) == 0 {
				x, y = b, a
			}
			id := cdfg.MustAdd(g.AddOp(kinds[r.Intn(len(kinds))], name, x, y))
			for d := 1; d < depth; d++ {
				id = cdfg.MustAdd(g.AddOp(kinds[r.Intn(len(kinds))], name+"x", id, a))
			}
			return id
		}
		c1 := cdfg.MustAdd(g.AddOp(cdfg.KindGt, "c1", a, b))
		t1 := mk("t1", 1+r.Intn(2))
		t2 := mk("t2", 1+r.Intn(2))
		m1 := cdfg.MustAdd(g.AddMux("m1", c1, t1, t2))
		cdfg.MustAdd(g.AddOutput("o", m1))
		return g
	}
	f := func(seed int64, av, bv uint8, extra uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := build(r)
		cp, err := g.CriticalPath()
		if err != nil {
			return false
		}
		pm, err := Schedule(g, Config{Budget: cp + 1 + int(extra%3)})
		if err != nil {
			return false
		}
		in := map[string]int64{"a": int64(av), "b": int64(bv)}
		ref, err := sim.Evaluate(g, in, sim.Options{Width: 8})
		if err != nil {
			return false
		}
		got, err := sim.ExecuteScheduled(pm.Schedule, pm.Guards, in, sim.Options{Width: 8})
		if err != nil {
			return false
		}
		return got.Outputs["out:o"] == ref["out:o"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestSavingsMetric sanity.
func TestSavingsMetric(t *testing.T) {
	g := compile(t, absDiffSrc)
	r, err := Schedule(g, Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Two gated subs, one guard each: savings = 2 * (1 - 0.5) = 1.
	if s := savingsMetric(r.Graph, r.Guards, nil); s != 1.0 {
		t.Errorf("unweighted savings = %.2f, want 1.0", s)
	}
	w := map[cdfg.Class]float64{cdfg.ClassSub: 3}
	if s := savingsMetric(r.Graph, r.Guards, w); s != 3.0 {
		t.Errorf("weighted savings = %.2f, want 3.0", s)
	}
}

func TestPermutations(t *testing.T) {
	ps := permutations([]cdfg.NodeID{1, 2, 3})
	if len(ps) != 6 {
		t.Errorf("permutations = %d, want 6", len(ps))
	}
	if len(permutations(nil)) != 1 {
		t.Error("empty permutation set")
	}
}

func TestNoMuxGraph(t *testing.T) {
	src := "func plain(a: num<8>, b: num<8>) o: num<8> = begin o = a + b; end"
	g := compile(t, src)
	r, err := Schedule(g, Config{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumManaged() != 0 || len(r.Guards) != 0 {
		t.Error("mux-free graph should have no management")
	}
}
