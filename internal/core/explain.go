package core

import (
	"fmt"
	"strings"

	"repro/internal/cdfg"
	"repro/internal/sched"
)

// MuxVerdict classifies the outcome of the power management attempt on one
// multiplexor.
type MuxVerdict int

const (
	// VerdictManaged: the mux was selected for power management.
	VerdictManaged MuxVerdict = iota
	// VerdictNothingToGate: both data-input cones are empty after the
	// sharing/fanout exclusions — there is nothing to shut down.
	VerdictNothingToGate
	// VerdictNoSlack: serializing control before data violates the
	// throughput constraint (ASAP would exceed ALAP for some node).
	VerdictNoSlack
)

// String names the verdict.
func (v MuxVerdict) String() string {
	switch v {
	case VerdictManaged:
		return "managed"
	case VerdictNothingToGate:
		return "nothing to gate"
	case VerdictNoSlack:
		return "insufficient slack"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// MuxReport explains the outcome for one multiplexor at one budget.
type MuxReport struct {
	// Mux is the multiplexor node.
	Mux cdfg.NodeID
	// Verdict classifies the outcome.
	Verdict MuxVerdict
	// GatedTrue/GatedFalse are the (potential or committed) gated sets.
	GatedTrue, GatedFalse []cdfg.NodeID
	// Detail is a human-readable explanation.
	Detail string
}

// Explain runs the selection loop of the power management pass in
// reporting mode: for every multiplexor (in the configured order) it
// states whether it was managed and, if not, why — the diagnostic a
// designer needs to decide between relaxing the throughput constraint and
// restructuring the behavior (paper §IV).
func Explain(g *cdfg.Graph, cfg Config) ([]MuxReport, error) {
	if cfg.Budget < 1 {
		return nil, fmt.Errorf("core: budget %d must be positive", cfg.Budget)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	work := g.Clone()
	w, err := sched.AnalyzeWindow(work, cfg.Budget)
	if err != nil {
		return nil, err
	}
	if !w.Feasible() {
		return nil, fmt.Errorf("core: budget %d below the critical path", cfg.Budget)
	}
	orders, err := candidateOrders(work, cfg)
	if err != nil {
		return nil, err
	}
	order := orders[0]

	var reports []MuxReport
	for _, m := range order {
		gs := computeGatedSets(work, m)
		rep := MuxReport{
			Mux:        m,
			GatedTrue:  gs.trueSet.Sorted(),
			GatedFalse: gs.falseSet.Sorted(),
		}
		if gs.empty() {
			rep.Verdict = VerdictNothingToGate
			rep.Detail = describeEmptyCones(work, m)
			reports = append(reports, rep)
			continue
		}
		sel := work.Node(m).Args[cdfg.MuxSel]
		before := len(work.ControlEdges())
		for _, branch := range []cdfg.NodeSet{gs.trueSet, gs.falseSet} {
			for _, top := range topsOf(work, branch) {
				if hasControlEdge(work, sel, top) {
					continue
				}
				if err := work.AddControlEdge(sel, top); err != nil {
					return nil, err
				}
			}
		}
		w, err := sched.AnalyzeWindow(work, cfg.Budget)
		if err != nil {
			return nil, err
		}
		if !w.Feasible() {
			truncateControlEdges(work, before)
			rep.Verdict = VerdictNoSlack
			rep.Detail = fmt.Sprintf(
				"scheduling %d gated ops after select %q needs more than %d steps",
				rep.gatedCount(), work.Node(sel).Name, cfg.Budget)
			reports = append(reports, rep)
			continue
		}
		rep.Verdict = VerdictManaged
		rep.Detail = fmt.Sprintf("select %q computed first; %d ops shut down when unused",
			work.Node(sel).Name, rep.gatedCount())
		reports = append(reports, rep)
	}
	return reports, nil
}

func (r MuxReport) gatedCount() int { return len(r.GatedTrue) + len(r.GatedFalse) }

// describeEmptyCones explains which exclusion emptied the gated sets.
func describeEmptyCones(g *cdfg.Graph, m cdfg.NodeID) string {
	mux := g.Node(m)
	coneSel := g.TransitiveFanin(mux.Args[cdfg.MuxSel])
	coneT := g.TransitiveFanin(mux.Args[cdfg.MuxTrue])
	coneF := g.TransitiveFanin(mux.Args[cdfg.MuxFalse])
	var reasons []string
	opsIn := func(cone cdfg.NodeSet) int {
		n := 0
		for id := range cone {
			if id != m && g.Node(id).IsOp() {
				n++
			}
		}
		return n
	}
	if opsIn(coneT) == 0 && opsIn(coneF) == 0 {
		return "both data inputs are primary values or constants"
	}
	shared := coneT.Intersect(coneF)
	sharedOps := 0
	for id := range shared {
		if g.Node(id).IsOp() {
			sharedOps++
		}
	}
	if sharedOps > 0 {
		reasons = append(reasons, fmt.Sprintf("%d ops feed both branches", sharedOps))
	}
	ctrlShared := 0
	for id := range coneSel {
		if g.Node(id).IsOp() && (coneT.Contains(id) || coneF.Contains(id)) {
			ctrlShared++
		}
	}
	if ctrlShared > 0 {
		reasons = append(reasons, fmt.Sprintf("%d ops also feed the select", ctrlShared))
	}
	if len(reasons) == 0 {
		reasons = append(reasons, "every branch op has fanout escaping the cone")
	}
	return strings.Join(reasons, "; ")
}

// FormatReports renders the explanation as text.
func FormatReports(g *cdfg.Graph, reports []MuxReport) string {
	var b strings.Builder
	for _, r := range reports {
		fmt.Fprintf(&b, "mux %-8s %-18s %s\n", g.Node(r.Mux).Name, r.Verdict, r.Detail)
	}
	return b.String()
}
