package core

import (
	"errors"
	"fmt"

	"repro/internal/cdfg"
	"repro/internal/sched"
	"repro/internal/sim"
)

// The paper (§II.B) notes that under fixed hardware resources full gating
// may be unschedulable — e.g. |a-b| in three steps with ONE subtractor: one
// subtraction must be issued in step 1, before the comparison result is
// known, and only the second subtraction can be power managed. Fig. 3's
// per-mux feasibility test is dependence-based and cannot see this, so the
// flow degrades gracefully: when the final resource-constrained list
// schedule fails, the gated operation blocking the schedule is released
// (made always-executing) together with its gated ancestors, and
// scheduling is retried.

// ungate releases op from all gating: its guards are dropped, it is
// removed from every managed mux's gated sets, and its gated ancestors
// (predecessors through transparent wires) are released recursively —
// an always-executing operation must read always-valid values.
func ungate(pr *passResult, op cdfg.NodeID) {
	if _, gated := pr.guards[op]; !gated {
		return
	}
	delete(pr.guards, op)
	for i := range pr.managed {
		pr.managed[i].GatedTrue = removeID(pr.managed[i].GatedTrue, op)
		pr.managed[i].GatedFalse = removeID(pr.managed[i].GatedFalse, op)
	}
	// Drop muxes whose gated sets became empty: nothing left to manage.
	kept := pr.managed[:0]
	for _, m := range pr.managed {
		if m.GatedCount() > 0 {
			kept = append(kept, m)
		}
	}
	pr.managed = kept

	g := pr.graph
	var release func(id cdfg.NodeID)
	release = func(id cdfg.NodeID) {
		n := g.Node(id)
		if n.Class() == cdfg.ClassWire {
			release(n.Args[0])
			return
		}
		if _, gated := pr.guards[id]; gated {
			ungate(pr, id)
		}
	}
	for _, p := range g.Preds(op) {
		release(p)
	}
}

func removeID(ids []cdfg.NodeID, id cdfg.NodeID) []cdfg.NodeID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

// rebuildControlEdges recomputes the pass's control edges from the current
// managed set: userEdges (pre-existing constraints) are preserved, then one
// edge per (select driver, gated-cone top).
func rebuildControlEdges(pr *passResult, userEdges []cdfg.ControlEdge) error {
	g := pr.graph
	g.ClearControlEdges()
	for _, e := range userEdges {
		if err := g.AddControlEdge(e.From, e.To); err != nil {
			return err
		}
	}
	for _, m := range pr.managed {
		for _, branch := range [][]cdfg.NodeID{m.GatedTrue, m.GatedFalse} {
			set := cdfg.NewNodeSet(branch...)
			for _, top := range topsOf(g, set) {
				if hasControlEdge(g, m.Sel, top) {
					continue
				}
				if err := g.AddControlEdge(m.Sel, top); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// gatedAncestor finds the cheapest gated operation on which the blocked
// node (transitively) depends, including the blocked node itself. The
// second result reports whether one exists.
func gatedAncestor(g *cdfg.Graph, guards sim.Guards, blocked cdfg.NodeID, weights map[cdfg.Class]float64) (cdfg.NodeID, bool) {
	weightOf := func(id cdfg.NodeID) float64 {
		if weights == nil {
			return 1
		}
		if w, ok := weights[g.Node(id).Class()]; ok {
			return w
		}
		return 1
	}
	best := cdfg.InvalidNode
	bestW := 0.0
	seen := make(cdfg.NodeSet)
	stack := []cdfg.NodeID{blocked}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		if _, gated := guards[id]; gated {
			w := weightOf(id)
			if best == cdfg.InvalidNode || w < bestW || (w == bestW && id < best) {
				best, bestW = id, w
			}
		}
		stack = append(stack, g.Preds(id)...)
	}
	return best, best != cdfg.InvalidNode
}

// scheduleWithRelaxation finishes a pass under fixed resources, releasing
// gated operations as needed until the list scheduler succeeds (or no
// gating remains to release).
func scheduleWithRelaxation(pr *passResult, budget, ii int, res sched.Resources,
	userEdges []cdfg.ControlEdge, weights map[cdfg.Class]float64) (*sched.Schedule, error) {
	for {
		s, err := sched.List(pr.graph, budget, ii, res)
		if err == nil {
			return s, nil
		}
		var ie *sched.InfeasibleError
		if !errors.As(err, &ie) || !ie.HasNode {
			return nil, err
		}
		victim, ok := gatedAncestor(pr.graph, pr.guards, ie.Node, weights)
		if !ok {
			return nil, fmt.Errorf("core: infeasible even without power management: %w", err)
		}
		ungate(pr, victim)
		if err := rebuildControlEdges(pr, userEdges); err != nil {
			return nil, err
		}
	}
}
