package core

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/sim"
)

func TestForceDirectedBackend(t *testing.T) {
	g := compile(t, absDiffSrc)
	r, err := Schedule(g, Config{Budget: 3, ForceDirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumManaged() != 1 {
		t.Errorf("managed = %d, want 1", r.NumManaged())
	}
	if err := r.Schedule.Validate(nil); err != nil {
		t.Error(err)
	}
	// Semantics preserved.
	for _, in := range []map[string]int64{{"a": 9, "b": 4}, {"a": 4, "b": 9}} {
		ref, err := sim.Evaluate(g, in, sim.Options{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.ExecuteScheduled(r.Schedule, r.Guards, in, sim.Options{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got.Outputs["out:out"] != ref["out:out"] {
			t.Errorf("in %v: %d != %d", in, got.Outputs["out:out"], ref["out:out"])
		}
	}
	// Resources reflect actual usage.
	if r.Resources[cdfg.ClassSub] < 1 {
		t.Error("missing resource accounting")
	}
}

func TestForceDirectedBackendRejectsPipelining(t *testing.T) {
	g := compile(t, absDiffSrc)
	if _, err := Schedule(g, Config{Budget: 4, II: 2, ForceDirected: true}); err == nil {
		t.Error("pipelined FDS accepted")
	}
}

func TestForceDirectedComparableToList(t *testing.T) {
	// On the nested conditional design both backends find a legal PM
	// schedule; total unit counts stay close.
	g := compile(t, nestedSrc)
	cp, _ := g.CriticalPath()
	list, err := Schedule(g, Config{Budget: cp + 2})
	if err != nil {
		t.Fatal(err)
	}
	fds, err := Schedule(g, Config{Budget: cp + 2, ForceDirected: true})
	if err != nil {
		t.Fatal(err)
	}
	if fds.NumManaged() != list.NumManaged() {
		t.Errorf("managed differ: fds %d vs list %d", fds.NumManaged(), list.NumManaged())
	}
	lt, ft := list.Resources.Total(), fds.Resources.Total()
	if ft > lt+2 {
		t.Errorf("FDS units %d much worse than list %d", ft, lt)
	}
}
