package core

import (
	"fmt"

	"repro/internal/cdfg"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Order selects the multiplexor processing order (paper §III and §IV.A).
type Order int

const (
	// OrderOutputsFirst processes muxes closest to the outputs first,
	// the paper's default: managing an outer mux shuts down the largest
	// cone.
	OrderOutputsFirst Order = iota
	// OrderInputsFirst processes muxes closest to the inputs first; an
	// ablation showing why the paper chose outputs-first.
	OrderInputsFirst
	// OrderGreedyWeight processes muxes in decreasing order of the
	// power weight of their gateable cones (the §IV.A reordering
	// pre-process).
	OrderGreedyWeight
	// OrderExhaustive tries every permutation of the candidate muxes
	// (up to a small limit, falling back to greedy) and keeps the order
	// with the highest expected weighted savings.
	OrderExhaustive
)

// String names the order strategy.
func (o Order) String() string {
	switch o {
	case OrderOutputsFirst:
		return "outputs-first"
	case OrderInputsFirst:
		return "inputs-first"
	case OrderGreedyWeight:
		return "greedy-weight"
	case OrderExhaustive:
		return "exhaustive"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// exhaustiveLimit caps the number of muxes for which OrderExhaustive tries
// all permutations (8! = 40320 passes).
const exhaustiveLimit = 8

// Config parameterizes the power management scheduling run.
type Config struct {
	// Budget is the number of control steps allowed per sample (the
	// throughput constraint). It must be at least the critical path.
	Budget int
	// II is the initiation interval for pipelined schedules; zero means
	// II == Budget (no pipelining). A two-stage pipeline over a budget
	// of 2T uses II = T (paper §IV.B).
	II int
	// Order is the multiplexor processing order.
	Order Order
	// Resources, when non-nil, fixes the available execution units;
	// when nil the scheduler minimizes hardware for the given budget,
	// as HYPER does.
	Resources sched.Resources
	// Weights gives the per-class power weight used by the reordering
	// strategies (nil weights make every operation count 1). The
	// canonical table lives in internal/power.
	Weights map[cdfg.Class]float64
	// ForceDirected selects the force-directed scheduling backend
	// (Paulin-Knight) instead of list scheduling with minimum-resource
	// search. Only valid for non-pipelined schedules without fixed
	// Resources.
	ForceDirected bool
}

func (c Config) ii() int {
	if c.II == 0 {
		return c.Budget
	}
	return c.II
}

// ManagedMux records one multiplexor selected for power management.
type ManagedMux struct {
	// Mux is the multiplexor node.
	Mux cdfg.NodeID
	// Sel is the node producing the controlling signal (the "last node
	// in the control input fanin").
	Sel cdfg.NodeID
	// GatedTrue and GatedFalse are the operations shut down when the
	// select steers the other way, per branch.
	GatedTrue, GatedFalse []cdfg.NodeID
}

// GatedCount returns the total number of gated operations for the mux.
func (m ManagedMux) GatedCount() int { return len(m.GatedTrue) + len(m.GatedFalse) }

// Result is the outcome of power management scheduling.
type Result struct {
	// Graph is a private clone of the input with the pass's control
	// edges inserted.
	Graph *cdfg.Graph
	// Schedule is the final schedule on Graph.
	Schedule *sched.Schedule
	// Resources is the execution-unit bag the schedule fits in.
	Resources sched.Resources
	// Managed lists the power managed muxes in processing order.
	Managed []ManagedMux
	// Guards maps every gated operation to its (possibly nested)
	// gating conditions, in the format the simulator and the
	// controller generator consume.
	Guards sim.Guards
	// Order is the processing order actually used.
	Order Order
}

// NumManaged returns the number of power managed multiplexors (the
// "P.Man. Muxs" column of Table II).
func (r *Result) NumManaged() int { return len(r.Managed) }

// GatedOps returns the set of all gated operations.
func (r *Result) GatedOps() cdfg.NodeSet {
	s := make(cdfg.NodeSet)
	for id := range r.Guards {
		s[id] = true
	}
	return s
}

// Baseline schedules g without any power management, the "traditional
// method" the paper compares against: minimum hardware for the given
// throughput, no control edges.
func Baseline(g *cdfg.Graph, budget, ii int) (*sched.Schedule, sched.Resources, error) {
	work := g.Clone()
	work.ClearControlEdges()
	if ii == 0 {
		ii = budget
	}
	return sched.Minimize(work, budget, ii)
}
