package core

import "repro/internal/cdfg"

// BranchCandidate is one mux branch with a non-empty maximal gateable set:
// the unit of shut-down the paper's pass (and any exact baseline) decides
// over. The set is the paper Fig. 3 step 3 cone after the §III fanout
// exclusions, successor-closed through transparent wires.
type BranchCandidate struct {
	// Mux is the multiplexor whose branch this is.
	Mux cdfg.NodeID
	// Sel is the mux's select driver (the guard source).
	Sel cdfg.NodeID
	// WhenTrue is true for the select=1 branch, false for the select=0
	// branch.
	WhenTrue bool
	// Members are the gateable operations in ascending node-ID order.
	Members []cdfg.NodeID
}

// BranchCandidates enumerates every non-empty gateable branch of g in a
// deterministic order: mux ID ascending, true branch before false. The sets
// depend only on dataflow edges, so the result is identical across clones
// of one behavior regardless of inserted control edges.
func BranchCandidates(g *cdfg.Graph) []BranchCandidate {
	var out []BranchCandidate
	for _, m := range g.Muxes() {
		gs := computeGatedSets(g, m)
		sel := g.Node(m).Args[cdfg.MuxSel]
		if len(gs.trueSet) > 0 {
			out = append(out, BranchCandidate{Mux: m, Sel: sel, WhenTrue: true, Members: gs.trueSet.Sorted()})
		}
		if len(gs.falseSet) > 0 {
			out = append(out, BranchCandidate{Mux: m, Sel: sel, WhenTrue: false, Members: gs.falseSet.Sorted()})
		}
	}
	return out
}

// GatedTops returns the members of set with no gated predecessor (looking
// through transparent wires): the nodes that receive serializing control
// edges from the select driver.
func GatedTops(g *cdfg.Graph, set cdfg.NodeSet) []cdfg.NodeID {
	return topsOf(g, set)
}
