package core

import (
	"strings"
	"testing"
)

func TestExplainAbsDiff(t *testing.T) {
	g := compile(t, absDiffSrc)
	// Budget 2: no slack.
	r2, err := Explain(g, Config{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r2) != 1 {
		t.Fatalf("reports = %d, want 1", len(r2))
	}
	if r2[0].Verdict != VerdictNoSlack {
		t.Errorf("budget 2 verdict = %v, want insufficient slack", r2[0].Verdict)
	}
	// Budget 3: managed.
	r3, err := Explain(g, Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r3[0].Verdict != VerdictManaged {
		t.Errorf("budget 3 verdict = %v, want managed", r3[0].Verdict)
	}
	if len(r3[0].GatedTrue) != 1 || len(r3[0].GatedFalse) != 1 {
		t.Errorf("gated sets %v/%v", r3[0].GatedTrue, r3[0].GatedFalse)
	}
	text := FormatReports(g, r3)
	if !strings.Contains(text, "managed") || !strings.Contains(text, "out") {
		t.Errorf("formatted report = %q", text)
	}
}

func TestExplainNothingToGate(t *testing.T) {
	// Mux over primary inputs: nothing to gate.
	src := `
func p(a: num<8>, b: num<8>, s: bool) o: num<8> =
begin
    o = if s -> a || b fi;
end
`
	g := compile(t, src)
	r, err := Explain(g, Config{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Verdict != VerdictNothingToGate {
		t.Errorf("verdict = %v", r[0].Verdict)
	}
	if !strings.Contains(r[0].Detail, "primary") {
		t.Errorf("detail = %q", r[0].Detail)
	}
}

func TestExplainSharedBranches(t *testing.T) {
	src := `
func s(a: num<8>, b: num<8>) o: num<8> =
begin
    c = a > b;
    t = a + b;
    o = if c -> t || t fi;
end
`
	g := compile(t, src)
	r, err := Explain(g, Config{Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Verdict != VerdictNothingToGate {
		t.Errorf("verdict = %v", r[0].Verdict)
	}
	if !strings.Contains(r[0].Detail, "both branches") {
		t.Errorf("detail = %q", r[0].Detail)
	}
}

func TestExplainControlConeOverlap(t *testing.T) {
	src := `
func cc(a: num<8>, b: num<8>) o: num<8> =
begin
    s = a - b;
    c = s > 4;
    o = if c -> s || b fi;
end
`
	g := compile(t, src)
	r, err := Explain(g, Config{Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r[0].Verdict != VerdictNothingToGate {
		t.Errorf("verdict = %v", r[0].Verdict)
	}
	if !strings.Contains(r[0].Detail, "select") {
		t.Errorf("detail = %q", r[0].Detail)
	}
}

func TestExplainErrors(t *testing.T) {
	g := compile(t, absDiffSrc)
	if _, err := Explain(g, Config{Budget: 0}); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := Explain(g, Config{Budget: 1}); err == nil {
		t.Error("budget below critical path accepted")
	}
}

func TestExplainMatchesSchedule(t *testing.T) {
	// The verdicts must agree with what Schedule actually commits.
	for _, src := range []string{absDiffSrc, nestedSrc} {
		g := compile(t, src)
		cp, _ := g.CriticalPath()
		for budget := cp; budget <= cp+3; budget++ {
			reports, err := Explain(g, Config{Budget: budget})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Schedule(g, Config{Budget: budget})
			if err != nil {
				t.Fatal(err)
			}
			managed := 0
			for _, r := range reports {
				if r.Verdict == VerdictManaged {
					managed++
				}
			}
			if managed != res.NumManaged() {
				t.Errorf("budget %d: explain says %d managed, schedule says %d",
					budget, managed, res.NumManaged())
			}
		}
	}
}

func TestVerdictString(t *testing.T) {
	for _, v := range []MuxVerdict{VerdictManaged, VerdictNothingToGate, VerdictNoSlack} {
		if v.String() == "" {
			t.Error("empty verdict name")
		}
	}
	if MuxVerdict(9).String() == "" {
		t.Error("unknown verdict should print")
	}
}
