package core

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/cdfg"
	"repro/internal/sched"
	"repro/internal/sim"
)

// gatedSets holds the per-branch gateable operation sets for one mux.
type gatedSets struct {
	trueSet, falseSet cdfg.NodeSet
}

func (gs gatedSets) empty() bool { return len(gs.trueSet) == 0 && len(gs.falseSet) == 0 }

// computeGatedSets derives the maximal gateable sets for mux m (paper
// Fig. 3 step 3 plus the fanout exclusions of §III).
//
// A node is gateable on branch b when:
//   - it lies in the transitive fanin of input b,
//   - it is not in the fanin of the select (it helps compute the
//     condition) nor in the fanin of the other data input (it is needed
//     either way),
//   - every dataflow path from it reaches only gated nodes, ending at
//     input b of m ("no fanout to other nodes besides the current
//     multiplexor"),
//   - it is a datapath operation (IO and wiring have no input latches).
//
// Wire nodes (constant shifts) are transparent: they may sit between gated
// operations, but are never members of the gated set themselves.
func computeGatedSets(g *cdfg.Graph, m cdfg.NodeID) gatedSets {
	mux := g.Node(m)
	coneSel := g.TransitiveFanin(mux.Args[cdfg.MuxSel])
	coneT := g.TransitiveFanin(mux.Args[cdfg.MuxTrue])
	coneF := g.TransitiveFanin(mux.Args[cdfg.MuxFalse])
	return gatedSets{
		trueSet:  gateable(g, m, coneT, coneSel, coneF),
		falseSet: gateable(g, m, coneF, coneSel, coneT),
	}
}

// gateable computes the closed gated set for one branch cone. The closure
// runs over ops and wires (wires are transparent carriers) and the final
// result keeps ops only.
func gateable(g *cdfg.Graph, m cdfg.NodeID, cone, coneSel, coneOther cdfg.NodeSet) cdfg.NodeSet {
	// Initial candidates: ops and wires exclusive to this branch cone.
	cand := make(cdfg.NodeSet)
	for id := range cone {
		if id == m || coneSel.Contains(id) || coneOther.Contains(id) {
			continue
		}
		n := g.Node(id)
		if n.IsOp() || n.Class() == cdfg.ClassWire {
			cand[id] = true
		}
	}
	// Fixed point: drop any candidate with a dataflow successor outside
	// cand ∪ {m}. (A successor equal to m is necessarily via this
	// branch's data input: select and other-input cones were excluded.)
	for changed := true; changed; {
		changed = false
		for id := range cand {
			for _, s := range g.Succs(id) {
				if s == m || cand.Contains(s) {
					continue
				}
				delete(cand, id)
				changed = true
				break
			}
		}
	}
	// Keep operations only.
	out := make(cdfg.NodeSet)
	for id := range cand {
		if g.Node(id).IsOp() {
			out[id] = true
		}
	}
	return out
}

// topsOf returns the gated operations with no gated (or wire-transparent
// gated) predecessor: the "top nodes" that receive the control edges.
func topsOf(g *cdfg.Graph, set cdfg.NodeSet) []cdfg.NodeID {
	var tops []cdfg.NodeID
	var reachesSet func(id cdfg.NodeID) bool
	reachesSet = func(id cdfg.NodeID) bool {
		if set.Contains(id) {
			return true
		}
		if g.Node(id).Class() == cdfg.ClassWire {
			return reachesSet(g.Node(id).Args[0])
		}
		return false
	}
	for _, id := range set.Sorted() {
		isTop := true
		for _, p := range g.Preds(id) {
			if reachesSet(p) {
				isTop = false
				break
			}
		}
		if isTop {
			tops = append(tops, id)
		}
	}
	return tops
}

// passResult is the outcome of one annotate-and-commit sweep over the
// muxes in a fixed order.
type passResult struct {
	graph   *cdfg.Graph
	managed []ManagedMux
	guards  sim.Guards
}

// runPass executes Fig. 3 steps 2-10 over the muxes of work (a private
// clone) in the given order, committing each mux whose serialization keeps
// the budget feasible. The input graph is mutated (control edges added).
func runPass(work *cdfg.Graph, budget int, order []cdfg.NodeID) (passResult, error) {
	res := passResult{graph: work, guards: make(sim.Guards)}
	for _, m := range order {
		gs := computeGatedSets(work, m)
		if gs.empty() {
			continue // nothing to shut down; not counted as managed
		}
		sel := work.Node(m).Args[cdfg.MuxSel]
		// Tentatively serialize: select driver before every gated top.
		before := len(work.ControlEdges())
		for _, branch := range []cdfg.NodeSet{gs.trueSet, gs.falseSet} {
			for _, top := range topsOf(work, branch) {
				if hasControlEdge(work, sel, top) {
					continue
				}
				if err := work.AddControlEdge(sel, top); err != nil {
					return passResult{}, err
				}
			}
		}
		w, err := sched.AnalyzeWindow(work, budget)
		if err != nil {
			return passResult{}, err
		}
		if !w.Feasible() {
			// Paper step 7: revert; no PM for this mux at this
			// throughput.
			truncateControlEdges(work, before)
			continue
		}
		mm := ManagedMux{
			Mux:        m,
			Sel:        sel,
			GatedTrue:  gs.trueSet.Sorted(),
			GatedFalse: gs.falseSet.Sorted(),
		}
		res.managed = append(res.managed, mm)
		for _, id := range mm.GatedTrue {
			addGuard(res.guards, id, sim.Guard{Sel: sel, WhenTrue: true})
		}
		for _, id := range mm.GatedFalse {
			addGuard(res.guards, id, sim.Guard{Sel: sel, WhenTrue: false})
		}
	}
	return res, nil
}

// addGuard appends a guard unless an identical one is already present: two
// muxes sharing one select can gate overlapping cones, and a repeated
// identical guard must not be double counted by the probability analyses.
func addGuard(gs sim.Guards, id cdfg.NodeID, gd sim.Guard) {
	for _, have := range gs[id] {
		if have == gd {
			return
		}
	}
	gs[id] = append(gs[id], gd)
}

func hasControlEdge(g *cdfg.Graph, from, to cdfg.NodeID) bool {
	for _, e := range g.ControlEdges() {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}

// truncateControlEdges removes control edges added after position n by
// rebuilding the edge list. cdfg exposes no removal primitive, so the
// revert clears and re-adds the prefix.
func truncateControlEdges(g *cdfg.Graph, n int) {
	edges := append([]cdfg.ControlEdge(nil), g.ControlEdges()[:n]...)
	g.ClearControlEdges()
	for _, e := range edges {
		// Re-adding known-good edges cannot fail.
		if err := g.AddControlEdge(e.From, e.To); err != nil {
			panic(fmt.Sprintf("core: revert failed: %v", err))
		}
	}
}

// savingsMetric scores a pass outcome: the expected weighted activity saved
// assuming independent, equiprobable selects — an op with k nested guards
// executes with probability 2^-k, saving weight*(1-2^-k).
func savingsMetric(g *cdfg.Graph, guards sim.Guards, weights map[cdfg.Class]float64) float64 {
	total := 0.0
	for id, gl := range guards {
		w := 1.0
		if weights != nil {
			if cw, ok := weights[g.Node(id).Class()]; ok {
				w = cw
			}
		}
		p := 1.0
		for range gl {
			p /= 2
		}
		total += w * (1 - p)
	}
	return total
}

// Schedule runs the full power management scheduling flow on g (paper
// Fig. 3). The input graph is not modified.
func Schedule(g *cdfg.Graph, cfg Config) (*Result, error) {
	if cfg.Budget < 1 {
		return nil, fmt.Errorf("core: budget %d must be positive", cfg.Budget)
	}
	ii := cfg.ii()
	if ii < 1 || ii > cfg.Budget {
		return nil, fmt.Errorf("core: initiation interval %d outside [1,%d]", ii, cfg.Budget)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// Budget feasibility before any PM constraint.
	base := g.Clone()
	w, err := sched.AnalyzeWindow(base, cfg.Budget)
	if err != nil {
		return nil, err
	}
	if !w.Feasible() {
		return nil, fmt.Errorf("core: budget %d below the critical path", cfg.Budget)
	}

	orders, err := candidateOrders(base, cfg)
	if err != nil {
		return nil, err
	}
	userEdges := append([]cdfg.ControlEdge(nil), g.ControlEdges()...)
	var best passResult
	bestScore := -1.0
	for _, order := range orders {
		work := g.Clone()
		pr, err := runPass(work, cfg.Budget, order)
		if err != nil {
			return nil, err
		}
		score := savingsMetric(work, pr.guards, cfg.Weights)
		if score > bestScore {
			best = pr
			bestScore = score
		}
	}

	var s *sched.Schedule
	var res sched.Resources
	switch {
	case cfg.Resources != nil:
		// Fixed hardware: degrade gating gracefully when the resource
		// constraint makes the fully gated schedule infeasible
		// (paper §II.B's one-subtractor scenario).
		res = cfg.Resources.Clone()
		s, err = scheduleWithRelaxation(&best, cfg.Budget, ii, res, userEdges, cfg.Weights)
	case cfg.ForceDirected:
		if ii != cfg.Budget {
			return nil, fmt.Errorf("core: force-directed backend does not support pipelining")
		}
		s, err = sched.ForceDirected(best.graph, cfg.Budget)
		if err == nil {
			res = s.Usage()
		}
	default:
		s, res, err = sched.Minimize(best.graph, cfg.Budget, ii)
	}
	if err != nil {
		return nil, fmt.Errorf("core: final scheduling failed: %w", err)
	}
	return &Result{
		Graph:     best.graph,
		Schedule:  s,
		Resources: res,
		Managed:   best.managed,
		Guards:    best.guards,
		Order:     cfg.Order,
	}, nil
}

// candidateOrders produces the mux processing order(s) for the configured
// strategy. OrderExhaustive returns every permutation when the mux count
// permits, otherwise the greedy order only.
func candidateOrders(g *cdfg.Graph, cfg Config) ([][]cdfg.NodeID, error) {
	muxes := g.Muxes()
	if len(muxes) == 0 {
		return [][]cdfg.NodeID{nil}, nil
	}
	height, err := g.HeightToOutput()
	if err != nil {
		return nil, err
	}
	byHeight := func(asc bool) []cdfg.NodeID {
		out := append([]cdfg.NodeID(nil), muxes...)
		slices.SortStableFunc(out, func(a, b cdfg.NodeID) int {
			if ha, hb := height[a], height[b]; ha != hb {
				if asc {
					return cmp.Compare(ha, hb)
				}
				return cmp.Compare(hb, ha)
			}
			return cmp.Compare(a, b)
		})
		return out
	}
	switch cfg.Order {
	case OrderOutputsFirst:
		return [][]cdfg.NodeID{byHeight(true)}, nil
	case OrderInputsFirst:
		return [][]cdfg.NodeID{byHeight(false)}, nil
	case OrderGreedyWeight:
		return [][]cdfg.NodeID{greedyWeightOrder(g, muxes, cfg.Weights)}, nil
	case OrderExhaustive:
		if len(muxes) > exhaustiveLimit {
			return [][]cdfg.NodeID{greedyWeightOrder(g, muxes, cfg.Weights)}, nil
		}
		return permutations(muxes), nil
	default:
		return nil, fmt.Errorf("core: unknown order strategy %v", cfg.Order)
	}
}

// greedyWeightOrder sorts muxes by decreasing gateable-cone weight, the
// §IV.A pre-processing heuristic. Ties fall back to outputs-first.
func greedyWeightOrder(g *cdfg.Graph, muxes []cdfg.NodeID, weights map[cdfg.Class]float64) []cdfg.NodeID {
	height, err := g.HeightToOutput()
	if err != nil {
		// Callers validated the graph; unreachable in practice.
		height = make([]int, g.NumNodes())
	}
	weightOf := func(set cdfg.NodeSet) float64 {
		total := 0.0
		for id := range set {
			w := 1.0
			if weights != nil {
				if cw, ok := weights[g.Node(id).Class()]; ok {
					w = cw
				}
			}
			total += w
		}
		return total
	}
	score := make(map[cdfg.NodeID]float64, len(muxes))
	for _, m := range muxes {
		gs := computeGatedSets(g, m)
		score[m] = weightOf(gs.trueSet) + weightOf(gs.falseSet)
	}
	out := append([]cdfg.NodeID(nil), muxes...)
	slices.SortStableFunc(out, func(a, b cdfg.NodeID) int {
		if score[a] != score[b] {
			return cmp.Compare(score[b], score[a])
		}
		if height[a] != height[b] {
			return cmp.Compare(height[a], height[b])
		}
		return cmp.Compare(a, b)
	})
	return out
}

// permutations returns all orderings of ids.
func permutations(ids []cdfg.NodeID) [][]cdfg.NodeID {
	if len(ids) == 0 {
		return [][]cdfg.NodeID{nil}
	}
	var out [][]cdfg.NodeID
	var rec func(cur []cdfg.NodeID, rest []cdfg.NodeID)
	rec = func(cur []cdfg.NodeID, rest []cdfg.NodeID) {
		if len(rest) == 0 {
			out = append(out, append([]cdfg.NodeID(nil), cur...))
			return
		}
		for i := range rest {
			next := append(cur, rest[i])
			var rem []cdfg.NodeID
			rem = append(rem, rest[:i]...)
			rem = append(rem, rest[i+1:]...)
			rec(next, rem)
		}
	}
	rec(nil, ids)
	return out
}
