// Package core implements the power management scheduling algorithm of
// Monteiro, Devadas, Ashar and Mauskar (DAC'96), the primary contribution
// of the reproduced paper.
//
// Given a CDFG and a throughput constraint (a number of control steps), the
// algorithm examines each multiplexor and asks whether the operations
// feeding its data inputs can be scheduled strictly after the operation
// producing its select signal. When they can, the controller knows — before
// those operations start — whether their results will be used, and can
// refuse to load the input registers of the units computing the dead
// branch: no switching activity, no dynamic power.
//
// The entry point is Schedule. It follows the paper's Figure 3:
//
//  1. compute ASAP/ALAP for the requested budget;
//  2. for each multiplexor (outputs first), annotate the transitive fanin
//     cones of its select and data inputs, derive the maximal gateable sets,
//     tentatively serialize control-before-data, and commit the mux if every
//     node still satisfies ASAP <= ALAP;
//  3. insert control edges from the select driver to the top nodes of each
//     committed gated cone;
//  4. hand the augmented graph to the HYPER-substitute list scheduler
//     (internal/sched) to obtain a minimum-resource schedule.
//
// Section IV.A's multiplexor reordering is available through
// Config.Order; Section IV.B's pipelining through Config.II.
package core
