// Package chip assembles a complete gate-level implementation — datapath
// plus controller — of a scheduled, bound design, and measures its
// switching activity. It is the stand-in for the paper's Synopsys Design
// Compiler + DesignPower flow (Table III).
//
// Structure, following the paper's architecture:
//
//   - a self-starting one-hot ring counter provides the control steps
//     (Steps+1 states; state 0 is the operand prologue);
//   - every operation owns a value register latched at the end of its
//     control step; boolean results double as the condition registers;
//   - every execution unit has operand registers latched one cycle before
//     each operation it hosts, with steering multiplexors when the unit is
//     shared;
//   - in the power managed variant every load enable is ANDed with the
//     operation's guard conditions: a disabled operand register freezes
//     the unit's inputs — no switching, no dynamic power. The guard of a
//     condition computed in the immediately preceding cycle taps the
//     unit's combinational output; older conditions come from their value
//     registers.
//
// Primary inputs are driven and held by the testbench for a whole sample,
// so they need no input registers; constants are hardwired.
package chip
