package chip

import (
	"math/rand"
	"testing"

	"repro/internal/silage"
)

// TestConditionProbabilitySensitivity documents the gate-level finding
// discussed in EXPERIMENTS.md: realized savings track how often the gating
// condition fires. For absdiff gated on a>b, a stream where a>b almost
// always holds gates d2 nearly always (good) but never exercises d1's
// shut-down; a balanced stream shuts each subtraction down half the time.
// Either way exactly one subtraction executes per sample, so both streams
// should save — but a stream where the CONDITION REGISTER itself never
// toggles also saves on control switching. The test asserts the weaker,
// robust property: savings are positive for balanced, skewed-true and
// skewed-false streams alike.
func TestConditionProbabilitySensitivity(t *testing.T) {
	g := silage.MustCompile(absDiffSrc).Graph
	mk := func(gen func(r *rand.Rand) (int64, int64)) []map[string]int64 {
		r := rand.New(rand.NewSource(42))
		out := make([]map[string]int64, 120)
		for i := range out {
			a, b := gen(r)
			out[i] = map[string]int64{"a": a, "b": b}
		}
		return out
	}
	streams := map[string][]map[string]int64{
		"balanced": mk(func(r *rand.Rand) (int64, int64) {
			return r.Int63n(256), r.Int63n(256)
		}),
		"mostly-greater": mk(func(r *rand.Rand) (int64, int64) {
			return 128 + r.Int63n(128), r.Int63n(128)
		}),
		"mostly-less": mk(func(r *rand.Rand) (int64, int64) {
			return r.Int63n(128), 128 + r.Int63n(128)
		}),
	}
	for name, vectors := range streams {
		rep, err := CompareWithVectors(g, 3, 8, vectors)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.PowerReductionPct() <= 0 {
			t.Errorf("%s: no savings (%.1f%%)", name, rep.PowerReductionPct())
		}
	}
}

func TestCompareWithVectorsValidation(t *testing.T) {
	g := silage.MustCompile(absDiffSrc).Graph
	if _, err := CompareWithVectors(g, 3, 8, nil); err == nil {
		t.Error("empty vector stream accepted")
	}
	// Missing input in a vector must surface as an error.
	_, err := CompareWithVectors(g, 3, 8, []map[string]int64{{"a": 1}})
	if err == nil {
		t.Error("missing input accepted")
	}
}
