package chip

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/silage"
)

// TestGatedRegisterFreezes observes the physical shut-down mechanism: the
// value register of the deselected subtraction keeps its previous contents
// across samples — its input latches never open, so the subtractor cone
// attached to it never switches for that branch.
func TestGatedRegisterFreezes(t *testing.T) {
	d := silage.MustCompile(absDiffSrc)
	r, err := core.Schedule(d.Graph, core.Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := alloc.Bind(r.Schedule, r.Guards)
	c, err := ctrl.Build(r.Schedule, b, r.Guards, true)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Build(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ch.NewTestbench()
	if err != nil {
		t.Fatal(err)
	}
	g := r.Graph
	d1Bus := chDbgQ(ch, g.Lookup("d1"))
	d2Bus := chDbgQ(ch, g.Lookup("d2"))

	// Sample 1: a > b, so d1 executes and d2 stays frozen (zero).
	if _, err := ch.RunSample(tb, map[string]int64{"a": 200, "b": 50}); err != nil {
		t.Fatal(err)
	}
	if got := tb.ReadBus(d1Bus); got != 150 {
		t.Errorf("d1 = %d, want 150", got)
	}
	frozen := tb.ReadBus(d2Bus)

	// Sample 2: again a > b with different values; d2 must not move.
	if _, err := ch.RunSample(tb, map[string]int64{"a": 90, "b": 30}); err != nil {
		t.Fatal(err)
	}
	if got := tb.ReadBus(d1Bus); got != 60 {
		t.Errorf("d1 = %d, want 60", got)
	}
	if got := tb.ReadBus(d2Bus); got != frozen {
		t.Errorf("gated d2 register moved: %d -> %d", frozen, got)
	}

	// Sample 3: a < b; now d2 loads and d1 freezes at its last value.
	if _, err := ch.RunSample(tb, map[string]int64{"a": 10, "b": 25}); err != nil {
		t.Fatal(err)
	}
	if got := tb.ReadBus(d2Bus); got != 15 {
		t.Errorf("d2 = %d, want 15", got)
	}
	if got := tb.ReadBus(d1Bus); got != 60 {
		t.Errorf("gated d1 register moved: got %d, want frozen 60", got)
	}
}
