package chip

import (
	"fmt"
	"math/rand"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/sim"
)

// Report is the Table III comparison between the traditional design
// ("Orig") and the power managed design ("New") of one circuit at one
// step budget.
type Report struct {
	Name  string
	Steps int
	// AreaOrig/AreaNew are NAND2-equivalent netlist areas.
	AreaOrig, AreaNew float64
	// PowerOrig/PowerNew are average fanout-weighted toggles per cycle.
	PowerOrig, PowerNew float64
	// Samples is the number of random vectors measured.
	Samples int
}

// AreaIncrease returns AreaNew / AreaOrig.
func (r Report) AreaIncrease() float64 {
	if r.AreaOrig == 0 {
		return 1
	}
	return r.AreaNew / r.AreaOrig
}

// PowerReductionPct returns the percentage power saving of New vs Orig.
func (r Report) PowerReductionPct() float64 {
	if r.PowerOrig == 0 {
		return 0
	}
	return 100 * (1 - r.PowerNew/r.PowerOrig)
}

// String formats the report as a Table III row.
func (r Report) String() string {
	return fmt.Sprintf("%-8s %2d  area %7.0f -> %7.0f (%.2fx)  power %8.1f -> %8.1f  (%.1f%%)",
		r.Name, r.Steps, r.AreaOrig, r.AreaNew, r.AreaIncrease(),
		r.PowerOrig, r.PowerNew, r.PowerReductionPct())
}

// RandomWord draws one uniform random input word for a datapath of the
// given width. Widths of 63 and 64 are legal in the frontend but cannot
// go through Int63n (1<<63 overflows int64); they draw the widest
// non-negative word instead, keeping values representable everywhere a
// signal rides an int64. Found by the differential harness's review of
// width edge cases.
func RandomWord(rnd *rand.Rand, width int) int64 {
	if width < 63 {
		return rnd.Int63n(int64(1) << uint(width))
	}
	return rnd.Int63() // uniform over [0, 2^63)
}

// RandomVectors draws the given number of uniform random input vectors for
// g at the given datapath width from rnd. The generator is injectable so
// gate-level power measurements are reproducible regardless of which sweep
// worker runs them.
func RandomVectors(g *cdfg.Graph, width, samples int, rnd *rand.Rand) []map[string]int64 {
	vectors := make([]map[string]int64, samples)
	for i := range vectors {
		in := make(map[string]int64, len(g.Inputs()))
		for _, id := range g.Inputs() {
			in[g.Node(id).Name] = RandomWord(rnd, width)
		}
		vectors[i] = in
	}
	return vectors
}

// Compare builds the traditional and power managed gate-level designs of
// graph g at the given budget and measures both on the same random input
// stream, verifying every sample's outputs against the reference
// interpreter. It reproduces one Table III row.
func Compare(g *cdfg.Graph, budget, width, samples int, seed int64) (Report, error) {
	rnd := rand.New(rand.NewSource(seed))
	return CompareWithVectors(g, budget, width, RandomVectors(g, width, samples, rnd))
}

// CompareWithVectors is Compare with a caller-supplied input stream. The
// measured savings depend directly on how often the gating conditions fire
// on the stream — skewed operating points (a condition that is almost
// always true) gate almost nothing, balanced ones realize the full
// equiprobable-model savings. This is the gate-level knob behind the
// Table III sensitivity analysis in EXPERIMENTS.md.
func CompareWithVectors(g *cdfg.Graph, budget, width int, vectors []map[string]int64) (Report, error) {
	if len(vectors) < 1 {
		return Report{Name: g.Name, Steps: budget}, fmt.Errorf("chip: need at least one sample")
	}
	fc := &flow.Context{Graph: g, Width: width, Config: core.Config{Budget: budget}}
	// The standard pipeline minus the activity pass: the gate-level
	// comparison measures switching directly and never reads the
	// probabilistic activity model.
	pipe := flow.New(flow.SchedulePass{}, flow.BindPass{}, flow.ControllerPass{}, flow.BaselinePass{})
	if err := pipe.Run(fc); err != nil {
		return Report{Name: g.Name, Steps: budget, Samples: len(vectors)}, err
	}
	return CompareContext(fc, vectors)
}

// CompareContext measures the gate-level chips of an already-run pipeline
// context on the given input stream. Both controllers (power managed and
// baseline) come straight from the context, so callers that already
// synthesized a design — the sweep engine, the root Synthesis — do not
// re-run any scheduling or binding.
func CompareContext(fc *flow.Context, vectors []map[string]int64) (Report, error) {
	if fc == nil || fc.PM == nil || fc.Controller == nil || fc.BaselineController == nil {
		return Report{Samples: len(vectors)}, fmt.Errorf("chip: context is missing pipeline artifacts")
	}
	g := fc.Graph
	rep := Report{Name: g.Name, Samples: len(vectors)}
	rep.Steps = fc.PM.Schedule.Steps
	if len(vectors) < 1 {
		return rep, fmt.Errorf("chip: need at least one sample")
	}

	pmChip, err := Build(fc.Controller, fc.Width)
	if err != nil {
		return rep, err
	}
	baseChip, err := Build(fc.BaselineController, fc.Width)
	if err != nil {
		return rep, err
	}

	rep.AreaOrig = baseChip.Netlist.Area()
	rep.AreaNew = pmChip.Netlist.Area()

	pmSim, err := pmChip.NewTestbench()
	if err != nil {
		return rep, err
	}
	baseSim, err := baseChip.NewTestbench()
	if err != nil {
		return rep, err
	}

	// Warm up both chips (initialization transients), then reset stats.
	warm := vectors[0]
	if _, err := pmChip.RunSample(pmSim, warm); err != nil {
		return rep, err
	}
	if _, err := baseChip.RunSample(baseSim, warm); err != nil {
		return rep, err
	}
	pmSim.ResetStats()
	baseSim.ResetStats()

	// One compiled reference program serves the whole vector stream; its
	// reused output map is read before the next EvalReuse call.
	ref, err := sim.Compile(g, sim.Options{Width: fc.Width})
	if err != nil {
		return rep, err
	}
	for i, in := range vectors {
		want, err := ref.EvalReuse(in)
		if err != nil {
			return rep, err
		}
		gotPM, err := pmChip.RunSample(pmSim, in)
		if err != nil {
			return rep, err
		}
		gotBase, err := baseChip.RunSample(baseSim, in)
		if err != nil {
			return rep, err
		}
		for _, id := range g.Outputs() {
			port := portOf(g, id)
			if gotPM[port] != want[g.Node(id).Name] {
				return rep, fmt.Errorf("chip: PM output %s = %d, reference %d (sample %d, inputs %v)",
					port, gotPM[port], want[g.Node(id).Name], i, in)
			}
			if gotBase[port] != want[g.Node(id).Name] {
				return rep, fmt.Errorf("chip: baseline output %s = %d, reference %d (sample %d, inputs %v)",
					port, gotBase[port], want[g.Node(id).Name], i, in)
			}
		}
	}
	rep.PowerOrig = baseSim.AveragePower()
	rep.PowerNew = pmSim.AveragePower()
	return rep, nil
}

func portOf(g *cdfg.Graph, id cdfg.NodeID) string {
	name := g.Node(id).Name
	const prefix = "out:"
	if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
		return name[len(prefix):]
	}
	return name
}
