package chip

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/bench"
	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/ctrl"
	"repro/internal/power"
	"repro/internal/silage"
	"repro/internal/sim"
)

const absDiffSrc = `
func absdiff(a: num<8>, b: num<8>) out: num<8> =
begin
    g   = a > b;
    d1  = a - b;
    d2  = b - a;
    out = if g -> d1 || d2 fi;
end
`

func buildChip(t *testing.T, src string, budget int, pm bool) (*core.Result, *Chip) {
	t.Helper()
	d, err := silage.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Schedule(d.Graph, core.Config{Budget: budget, Weights: power.Weights})
	if err != nil {
		t.Fatal(err)
	}
	b := alloc.Bind(r.Schedule, r.Guards)
	c, err := ctrl.Build(r.Schedule, b, r.Guards, pm)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Build(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	return r, ch
}

func TestChipComputesAbsDiff(t *testing.T) {
	_, ch := buildChip(t, absDiffSrc, 3, true)
	tb, err := ch.NewTestbench()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want int64 }{
		{9, 4, 5}, {4, 9, 5}, {7, 7, 0}, {255, 0, 255}, {0, 0, 0},
	}
	for _, c := range cases {
		out, err := ch.RunSample(tb, map[string]int64{"a": c.a, "b": c.b})
		if err != nil {
			t.Fatal(err)
		}
		if out["out"] != c.want {
			t.Errorf("|%d-%d| = %d, want %d", c.a, c.b, out["out"], c.want)
		}
	}
}

func TestChipMatchesReferenceRandom(t *testing.T) {
	d, err := silage.Compile(absDiffSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, ch := buildChip(t, absDiffSrc, 3, true)
	tb, err := ch.NewTestbench()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		in := map[string]int64{"a": r.Int63n(256), "b": r.Int63n(256)}
		want, err := sim.Evaluate(d.Graph, in, sim.Options{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ch.RunSample(tb, in)
		if err != nil {
			t.Fatal(err)
		}
		if got["out"] != want["out:out"] {
			t.Fatalf("iter %d: chip %d, reference %d (in %v)", i, got["out"], want["out:out"], in)
		}
	}
}

// TestGatingReducesChipPower is the Table III headline at miniature scale:
// the PM chip must burn measurably less than the baseline on the same
// input stream.
func TestGatingReducesChipPower(t *testing.T) {
	rep, err := Compare(silage.MustCompile(absDiffSrc).Graph, 3, 8, 150, 99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PowerNew >= rep.PowerOrig {
		t.Errorf("no gate-level savings: orig %.1f, new %.1f", rep.PowerOrig, rep.PowerNew)
	}
	if rep.PowerReductionPct() < 3 {
		t.Errorf("savings suspiciously small: %.1f%%", rep.PowerReductionPct())
	}
	if rep.AreaOrig <= 0 || rep.AreaNew <= 0 {
		t.Error("missing areas")
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

// TestChipNestedConditionals exercises guard chains at gate level.
func TestChipNestedConditionals(t *testing.T) {
	src := `
func nest(a: num<8>, b: num<8>, x: num<8>) o: num<8> =
begin
    outer = a > b;
    t1    = a - b;
    inner = t1 > 4;
    t2    = t1 * 3;
    t3    = t1 + 7;
    m     = if inner -> t2 || t3 fi;
    o     = if outer -> m || x fi;
end
`
	d, err := silage.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := d.Graph.CriticalPath()
	_, ch := buildChip(t, src, cp+2, true)
	tb, err := ch.NewTestbench()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 150; i++ {
		in := map[string]int64{"a": r.Int63n(256), "b": r.Int63n(256), "x": r.Int63n(256)}
		want, err := sim.Evaluate(d.Graph, in, sim.Options{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ch.RunSample(tb, in)
		if err != nil {
			t.Fatal(err)
		}
		if got["o"] != want["out:o"] {
			t.Fatalf("iter %d: chip %d, reference %d (in %v)", i, got["o"], want["out:o"], in)
		}
	}
}

// TestChipAllBenchmarksFunctional builds the PM chip for each benchmark at
// its largest Table II budget and verifies functional equivalence on a few
// samples. Cordic is skipped in -short mode (large netlist).
func TestChipAllBenchmarksFunctional(t *testing.T) {
	for _, c := range bench.All() {
		if c.Name == "cordic" && testing.Short() {
			continue
		}
		budget := c.Budgets[len(c.Budgets)-1]
		r, err := core.Schedule(c.Graph(), core.Config{Budget: budget, Weights: power.Weights})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		b := alloc.Bind(r.Schedule, r.Guards)
		ctl, err := ctrl.Build(r.Schedule, b, r.Guards, true)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		ch, err := Build(ctl, 8)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		tb, err := ch.NewTestbench()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		rnd := rand.New(rand.NewSource(23))
		samples := 10
		if c.Name == "cordic" {
			samples = 3
		}
		for i := 0; i < samples; i++ {
			in := make(map[string]int64)
			for _, id := range c.Graph().Inputs() {
				in[c.Graph().Node(id).Name] = rnd.Int63n(256)
			}
			want, err := sim.Evaluate(c.Graph(), in, sim.Options{Width: 8})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ch.RunSample(tb, in)
			if err != nil {
				t.Fatalf("%s sample %d: %v", c.Name, i, err)
			}
			for _, id := range c.Graph().Outputs() {
				port := portOf(c.Graph(), id)
				if got[port] != want[c.Graph().Node(id).Name] {
					t.Errorf("%s sample %d out %s: chip %d, ref %d (in %v)",
						c.Name, i, port, got[port], want[c.Graph().Node(id).Name], in)
				}
			}
		}
	}
}

func TestChipBuildErrors(t *testing.T) {
	d, err := silage.Compile(absDiffSrc)
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Schedule(d.Graph, core.Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := alloc.Bind(r.Schedule, r.Guards)
	c, err := ctrl.Build(r.Schedule, b, r.Guards, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(c, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := Build(c, 64); err == nil {
		t.Error("width 64 accepted")
	}
}

func TestCompareSampleValidation(t *testing.T) {
	g := silage.MustCompile(absDiffSrc).Graph
	if _, err := Compare(g, 3, 8, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

// TestBaselineChipLoadsEverything: the baseline chip charges every unit
// every scheduled step; its subtractor operand registers toggle for both
// subtractions regardless of the comparison.
func TestBaselineChipPowerExceedsPM(t *testing.T) {
	d := silage.MustCompile(absDiffSrc)
	// Use the same schedule for both controllers to isolate gating.
	r, err := core.Schedule(d.Graph, core.Config{Budget: 3, Weights: power.Weights})
	if err != nil {
		t.Fatal(err)
	}
	b := alloc.Bind(r.Schedule, r.Guards)
	pmCtl, err := ctrl.Build(r.Schedule, b, r.Guards, true)
	if err != nil {
		t.Fatal(err)
	}
	origCtl, err := ctrl.Build(r.Schedule, b, r.Guards, false)
	if err != nil {
		t.Fatal(err)
	}
	pmChip, err := Build(pmCtl, 8)
	if err != nil {
		t.Fatal(err)
	}
	origChip, err := Build(origCtl, 8)
	if err != nil {
		t.Fatal(err)
	}
	pmTB, err := pmChip.NewTestbench()
	if err != nil {
		t.Fatal(err)
	}
	origTB, err := origChip.NewTestbench()
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(7))
	warm := map[string]int64{"a": 1, "b": 2}
	pmChip.RunSample(pmTB, warm)
	origChip.RunSample(origTB, warm)
	pmTB.ResetStats()
	origTB.ResetStats()
	for i := 0; i < 120; i++ {
		in := map[string]int64{"a": rnd.Int63n(256), "b": rnd.Int63n(256)}
		if _, err := pmChip.RunSample(pmTB, in); err != nil {
			t.Fatal(err)
		}
		if _, err := origChip.RunSample(origTB, in); err != nil {
			t.Fatal(err)
		}
	}
	if pmTB.AveragePower() >= origTB.AveragePower() {
		t.Errorf("same-schedule gating saved nothing: pm %.1f, orig %.1f",
			pmTB.AveragePower(), origTB.AveragePower())
	}
	_ = cdfg.ClassMux // keep import for readability of future edits
}
