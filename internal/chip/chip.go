package chip

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/cdfg"
	"repro/internal/ctrl"
	"repro/internal/rtl"
	"repro/internal/silage"
	"repro/internal/sim"
)

// Chip is a built gate-level design.
type Chip struct {
	// Netlist is the gate-level circuit.
	Netlist *rtl.Netlist
	// Controller is the FSM description the chip implements.
	Controller *ctrl.Controller
	// Width is the datapath word width.
	Width int
	// CyclesPerSample is Steps+1 (the prologue plus one cycle per step).
	CyclesPerSample int

	// dbgQ exposes value-register outputs for white-box tests.
	dbgQ map[cdfg.NodeID][]rtl.Net
}

type builder struct {
	nl *rtl.Netlist
	c  *ctrl.Controller
	w  int

	state []rtl.Net // one-hot state bits, length Steps+1

	ports  map[cdfg.NodeID][]rtl.Net // input node -> port bus
	valueQ map[cdfg.NodeID][]rtl.Net // register outputs
	valueD map[cdfg.NodeID][]rtl.Net // register data placeholders
	valueE map[cdfg.NodeID]rtl.Net   // register enable placeholders

	invCache map[rtl.Net]rtl.Net
}

// MaxWidth is the widest datapath the gate-level builder supports; wider
// designs still synthesize and simulate behaviorally, but cannot be
// lowered to a netlist (the verification oracle skips its gate-level
// stage above this bound).
const MaxWidth = 32

// Build assembles the gate-level chip for the controller.
func Build(c *ctrl.Controller, width int) (*Chip, error) {
	if width < 1 || width > MaxWidth {
		return nil, fmt.Errorf("chip: width %d outside [1,%d]", width, MaxWidth)
	}
	b := &builder{
		nl:       rtl.New(c.Graph.Name),
		c:        c,
		w:        width,
		ports:    make(map[cdfg.NodeID][]rtl.Net),
		valueQ:   make(map[cdfg.NodeID][]rtl.Net),
		valueD:   make(map[cdfg.NodeID][]rtl.Net),
		valueE:   make(map[cdfg.NodeID]rtl.Net),
		invCache: make(map[rtl.Net]rtl.Net),
	}
	b.buildStateRing()
	b.buildPorts()
	b.buildValueRegisters()
	if err := b.buildUnits(); err != nil {
		return nil, err
	}
	if err := b.buildEnables(); err != nil {
		return nil, err
	}
	b.buildOutputs()
	return &Chip{
		Netlist:         b.nl,
		Controller:      c,
		Width:           width,
		CyclesPerSample: c.Steps + 1,
		dbgQ:            b.valueQ,
	}, nil
}

// buildStateRing creates the self-starting one-hot ring counter: when no
// state bit is set (power-on), state 0 loads first.
func (b *builder) buildStateRing() {
	n := b.c.Steps + 1
	d := b.nl.PlaceholderBus(n)
	q := b.nl.RegisterE(d, rtl.One)
	b.state = q
	any := b.nl.OrTree(q...)
	none := b.inv(any)
	first := b.nl.AddGate(rtl.GOr, none, q[n-1])
	b.nl.Drive(d[0], first)
	for k := 1; k < n; k++ {
		b.nl.Drive(d[k], q[k-1])
	}
}

func (b *builder) inv(x rtl.Net) rtl.Net {
	if v, ok := b.invCache[x]; ok {
		return v
	}
	v := b.nl.AddGate(rtl.GInv, x)
	b.invCache[x] = v
	return v
}

func (b *builder) buildPorts() {
	for _, id := range b.c.Graph.Inputs() {
		b.ports[id] = b.nl.Input(b.c.Graph.Node(id).Name, b.w)
	}
}

// buildValueRegisters allocates every operation's result register on
// placeholder data/enable nets, so that units (whose inputs read register
// outputs) can be built afterwards.
func (b *builder) buildValueRegisters() {
	for _, n := range b.c.Graph.Nodes() {
		if !n.IsOp() {
			continue
		}
		d := b.nl.PlaceholderBus(b.w)
		en := b.nl.PlaceholderBus(1)
		b.valueD[n.ID] = d
		b.valueE[n.ID] = en[0]
		b.valueQ[n.ID] = b.nl.RegisterE(d, en[0])
	}
}

// value returns the bus carrying node id's settled result: register
// outputs for ops, ports for inputs, hardwired buses for constants, and
// shifted wiring for the free shift nodes.
func (b *builder) value(id cdfg.NodeID) []rtl.Net {
	return b.valueAt(id, -1)
}

// valueAt returns the bus carrying node id's result as visible during the
// given cycle. A value produced in exactly that cycle is not yet in its
// register — it is tapped from the producing unit's combinational output
// (the register's data input), which is how back-to-back steps chain in
// the generated hardware. Pass cycle -1 for the settled (post-sample)
// view.
func (b *builder) valueAt(id cdfg.NodeID, cycle int) []rtl.Net {
	n := b.c.Graph.Node(id)
	switch {
	case n.Kind == cdfg.KindInput:
		return b.ports[id]
	case n.Kind == cdfg.KindConst:
		return b.nl.ConstBus(n.Value, b.w)
	case n.Kind == cdfg.KindShl:
		return b.nl.ShiftBus(b.valueAt(n.Args[0], cycle), true, n.Shift)
	case n.Kind == cdfg.KindShr:
		return b.nl.ShiftBus(b.valueAt(n.Args[0], cycle), false, n.Shift)
	case n.Kind == cdfg.KindOutput:
		return b.valueAt(n.Args[0], cycle)
	case cycle >= 0 && b.c.Schedule.Time[id] == cycle:
		return b.valueD[id]
	default:
		return b.valueQ[id]
	}
}

// guardBit returns the single-bit net for one guard term as seen during
// the given cycle. A condition produced in that same cycle is tapped from
// the producing register's data input (the unit's combinational output);
// conditions produced earlier come from the register output; boolean
// primary inputs come from their port.
func (b *builder) guardBit(gd sim.Guard, cycle int) rtl.Net {
	selNode := b.c.Graph.Node(gd.Sel)
	var bit rtl.Net
	switch {
	case selNode.Kind == cdfg.KindInput:
		bit = b.ports[gd.Sel][0]
	case b.c.Schedule.Time[gd.Sel] == cycle:
		bit = b.valueD[gd.Sel][0]
	default:
		bit = b.valueQ[gd.Sel][0]
	}
	if !gd.WhenTrue {
		bit = b.inv(bit)
	}
	return bit
}

// enableFor builds the enable net for a load at the given cycle with the
// given guards: state AND guard terms.
func (b *builder) enableFor(cycle int, guards []sim.Guard) rtl.Net {
	term := b.state[cycle]
	for _, gd := range guards {
		term = b.nl.AddGate(rtl.GAnd, term, b.guardBit(gd, cycle))
	}
	return term
}

func zeroExtend(nl *rtl.Netlist, bit rtl.Net, w int) []rtl.Net {
	bus := make([]rtl.Net, w)
	bus[0] = bit
	for i := 1; i < w; i++ {
		bus[i] = rtl.Zero
	}
	return bus
}

// buildUnits creates the execution units with operand steering, operand
// registers, the shared combinational cores, and drives every operation's
// value-register data placeholder.
func (b *builder) buildUnits() error {
	// Multiplexor operations are interconnect, not execution units: they
	// have no input latches to gate. Each is inlined as combinational
	// steering in front of its (possibly guarded) value register. All
	// argument producers finish at least one cycle before the mux's
	// step, so the settled register view is correct.
	for _, n := range b.c.Graph.Nodes() {
		if n.Kind != cdfg.KindMux {
			continue
		}
		sel := b.value(n.Args[cdfg.MuxSel])[0]
		out := b.nl.Mux2Bus(sel, b.value(n.Args[cdfg.MuxTrue]), b.value(n.Args[cdfg.MuxFalse]))
		d := b.valueD[n.ID]
		for i := range d {
			b.nl.Drive(d[i], out[i])
		}
	}

	// Group the remaining unit loads by unit.
	units := make(map[alloc.Unit][]opLoad)
	for _, ul := range b.c.UnitLoads {
		if b.c.Graph.Node(ul.Op).Kind == cdfg.KindMux {
			continue
		}
		units[ul.Unit] = append(units[ul.Unit], opLoad{op: ul.Op, step: ul.Step, guards: ul.Guards})
	}
	// Deterministic unit order.
	var keys []alloc.Unit
	for u := range units {
		keys = append(keys, u)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			if keys[j].Class < keys[i].Class ||
				(keys[j].Class == keys[i].Class && keys[j].Index < keys[i].Index) {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}

	for _, u := range keys {
		ops := units[u]
		// Per-op load terms (state AND guards), computed once and used
		// both for operand steering and the register enables. Steering
		// by the full term (not just the state bit) matters when two
		// mutually exclusive ops share the unit in the same step: only
		// the guard distinguishes whose operands to route.
		loadTerm := make([]rtl.Net, len(ops))
		for i, ol := range ops {
			loadTerm[i] = b.enableFor(ol.step, ol.guards)
		}
		en := b.nl.OrTree(loadTerm...)

		// All execution-unit classes are two-operand (NOT uses the
		// first operand only).
		const numOperands = 2
		operandRegs := make([][]rtl.Net, numOperands)
		for k := 0; k < numOperands; k++ {
			argOf := func(ol opLoad) []rtl.Net {
				n := b.c.Graph.Node(ol.op)
				if k >= len(n.Args) {
					return b.nl.ConstBus(0, b.w)
				}
				// Operands are read during the load cycle; a
				// producer executing in that same cycle is
				// tapped combinationally.
				return b.valueAt(n.Args[k], ol.step)
			}
			src := argOf(ops[0])
			for i, ol := range ops[1:] {
				src = b.nl.Mux2Bus(loadTerm[i+1], argOf(ol), src)
			}
			operandRegs[k] = b.nl.RegisterE(src, en)
		}

		// Combinational core and per-op result wiring.
		if err := b.buildCore(u, ops, operandRegs); err != nil {
			return err
		}
	}
	return nil
}

// opLoad pairs an operation with its operand-load cycle and guards.
type opLoad struct {
	op     cdfg.NodeID
	step   int
	guards []sim.Guard
}

// buildCore instantiates the unit's combinational logic and drives the
// value-register data inputs of every op bound to the unit.
func (b *builder) buildCore(u alloc.Unit, ops []opLoad, regs [][]rtl.Net) error {
	nl := b.nl
	drive := func(op cdfg.NodeID, bus []rtl.Net) {
		d := b.valueD[op]
		for i := range d {
			nl.Drive(d[i], bus[i])
		}
	}
	switch u.Class {
	case cdfg.ClassAdd:
		sum, _ := nl.RippleAdder(regs[0], regs[1], rtl.Zero)
		for _, ol := range ops {
			drive(ol.op, sum)
		}
	case cdfg.ClassSub:
		diff, _ := nl.RippleSubtractor(regs[0], regs[1])
		for _, ol := range ops {
			drive(ol.op, diff)
		}
	case cdfg.ClassMul:
		prod := nl.ArrayMultiplier(regs[0], regs[1])
		for _, ol := range ops {
			drive(ol.op, prod)
		}
	case cdfg.ClassComp:
		// One subtract core plus an equality tree yields all six
		// flags: GE = carry(a-b); LT = !GE; EQ; NE = !EQ;
		// GT = GE && NE; LE = !GT.
		ge := nl.CompareGE(regs[0], regs[1])
		eq := nl.CompareEQ(regs[0], regs[1])
		lt := nl.AddGate(rtl.GInv, ge)
		ne := nl.AddGate(rtl.GInv, eq)
		gt := nl.AddGate(rtl.GAnd, ge, ne)
		le := nl.AddGate(rtl.GInv, gt)
		for _, ol := range ops {
			var flag rtl.Net
			switch b.c.Graph.Node(ol.op).Kind {
			case cdfg.KindGe:
				flag = ge
			case cdfg.KindLt:
				flag = lt
			case cdfg.KindEq:
				flag = eq
			case cdfg.KindNe:
				flag = ne
			case cdfg.KindGt:
				flag = gt
			case cdfg.KindLe:
				flag = le
			default:
				return fmt.Errorf("chip: op %q is not a comparison", b.c.Graph.Node(ol.op).Name)
			}
			drive(ol.op, zeroExtend(nl, flag, b.w))
		}
	case cdfg.ClassLogic:
		a0, b0 := regs[0][0], regs[1][0]
		andF := nl.AddGate(rtl.GAnd, a0, b0)
		orF := nl.AddGate(rtl.GOr, a0, b0)
		notF := nl.AddGate(rtl.GInv, a0)
		for _, ol := range ops {
			var f rtl.Net
			switch b.c.Graph.Node(ol.op).Kind {
			case cdfg.KindAnd:
				f = andF
			case cdfg.KindOr:
				f = orF
			case cdfg.KindNot:
				f = notF
			default:
				return fmt.Errorf("chip: op %q is not a logic op", b.c.Graph.Node(ol.op).Name)
			}
			drive(ol.op, zeroExtend(nl, f, b.w))
		}
	default:
		// ClassMux is inlined in buildUnits and never reaches here.
		return fmt.Errorf("chip: unit class %v not buildable", u.Class)
	}
	return nil
}

// buildEnables drives every value register's enable placeholder.
func (b *builder) buildEnables() error {
	for _, ld := range b.c.Loads {
		if ld.Step == 0 {
			continue // primary inputs: testbench-held ports
		}
		en, ok := b.valueE[ld.Node]
		if !ok {
			return fmt.Errorf("chip: load for unknown register %d", ld.Node)
		}
		b.nl.Drive(en, b.enableFor(ld.Step, ld.Guards))
	}
	return nil
}

func (b *builder) buildOutputs() {
	for _, id := range b.c.Graph.Outputs() {
		name := silage.PortName(b.c.Graph.Node(id).Name)
		b.nl.Output(name, b.value(id))
	}
}

// NewTestbench wraps a simulator for the chip, advanced one cycle so the
// ring counter sits in the prologue state.
func (c *Chip) NewTestbench() (*rtl.Simulator, error) {
	s, err := rtl.NewSimulator(c.Netlist)
	if err != nil {
		return nil, err
	}
	s.Propagate()
	s.Step() // self-start: state 0 becomes active
	return s, nil
}

// RunSample drives one input sample through the chip (Steps+1 cycles) and
// returns the outputs. The simulator must be positioned at the prologue
// state (as NewTestbench and previous RunSample calls leave it).
func (c *Chip) RunSample(s *rtl.Simulator, inputs map[string]int64) (map[string]int64, error) {
	for name, v := range inputs {
		if err := s.SetInput(name, v); err != nil {
			return nil, err
		}
	}
	// Let the combinational logic settle on the new operands before the
	// first edge: Step captures flip-flop data inputs pre-edge.
	s.Propagate()
	for i := 0; i < c.CyclesPerSample; i++ {
		s.Step()
	}
	out := make(map[string]int64)
	for _, id := range c.Controller.Graph.Outputs() {
		name := silage.PortName(c.Controller.Graph.Node(id).Name)
		v, err := s.ReadOutput(name)
		if err != nil {
			return nil, err
		}
		out[name] = v
	}
	return out, nil
}

// chDbgQ exposes a node's value-register output bus for debugging.
func chDbgQ(c *Chip, id cdfg.NodeID) []rtl.Net { return c.dbgQ[id] }
