package bench

import (
	"fmt"

	"repro/internal/cdfg"
	"repro/internal/silage"
)

// PaperRowII is one row of the paper's Table II, kept for side-by-side
// reporting.
type PaperRowII struct {
	// Steps is the allowed number of control steps.
	Steps int
	// PMMuxes is the number of multiplexors selected for power
	// management.
	PMMuxes int
	// AreaIncr is the reported relative area increase.
	AreaIncr float64
	// Mux..Mul are the average operation execution counts.
	Mux, Comp, Add, Sub, Mul float64
	// PowerRed is the reported datapath power reduction in percent.
	PowerRed float64
}

// PaperRowIII is one row of the paper's Table III (Synopsys estimates).
type PaperRowIII struct {
	Steps               int
	AreaOrig, AreaNew   float64
	PowerOrig, PowerNew float64
	PowerRedPct         float64
}

// Circuit bundles a benchmark: its source, compiled design, the paper's
// published numbers, and the step budgets to sweep.
type Circuit struct {
	// Name is the circuit name as it appears in the paper's tables.
	Name string
	// Source is the Silage-style behavioral description.
	Source string
	// Design is the compiled design.
	Design *silage.Design
	// PaperStats is the paper's Table I row for this circuit.
	PaperStats cdfg.Stats
	// Budgets lists the control-step budgets evaluated in Table II.
	Budgets []int
	// PaperII holds the paper's Table II rows.
	PaperII []PaperRowII
	// PaperIII holds the paper's Table III row, if the circuit appears
	// there (Steps == 0 otherwise).
	PaperIII PaperRowIII
}

// Graph returns the compiled CDFG.
func (c *Circuit) Graph() *cdfg.Graph { return c.Design.Graph }

// tableIRow projects the Table I columns out of a Stats value: critical
// path and the five datapath operation classes (IO, wiring and logic are
// not part of the paper's table).
type tableIRow struct {
	cp, mux, comp, add, sub, mul int
}

func projectTableI(s cdfg.Stats) tableIRow {
	return tableIRow{
		cp:   s.CriticalPath,
		mux:  s.Count[cdfg.ClassMux],
		comp: s.Count[cdfg.ClassComp],
		add:  s.Count[cdfg.ClassAdd],
		sub:  s.Count[cdfg.ClassSub],
		mul:  s.Count[cdfg.ClassMul],
	}
}

func mustCircuit(name, src string, stats cdfg.Stats, budgets []int, ii []PaperRowII, iii PaperRowIII) *Circuit {
	d, err := silage.Compile(src)
	if err != nil {
		panic(fmt.Sprintf("bench: %s does not compile: %v", name, err))
	}
	got, err := d.Graph.ComputeStats()
	if err != nil {
		panic(fmt.Sprintf("bench: %s stats: %v", name, err))
	}
	if projectTableI(got) != projectTableI(stats) {
		panic(fmt.Sprintf("bench: %s statistics drifted from Table I: got %v, want %v", name, got, stats))
	}
	return &Circuit{
		Name:       name,
		Source:     src,
		Design:     d,
		PaperStats: got,
		Budgets:    budgets,
		PaperII:    ii,
		PaperIII:   iii,
	}
}

func stats(cp, mux, comp, add, sub, mul int) cdfg.Stats {
	var s cdfg.Stats
	s.CriticalPath = cp
	s.Count[cdfg.ClassMux] = mux
	s.Count[cdfg.ClassComp] = comp
	s.Count[cdfg.ClassAdd] = add
	s.Count[cdfg.ClassSub] = sub
	s.Count[cdfg.ClassMul] = mul
	return s
}

// AbsDiff returns the |a-b| example of paper Figures 1-2.
func AbsDiff() *Circuit {
	const src = `
# |a-b|: the running example of the paper's Figures 1 and 2.
func absdiff(a: num<8>, b: num<8>) out: num<8> =
begin
    g   = a > b;
    d1  = a - b;
    d2  = b - a;
    out = if g -> d1 || d2 fi;
end
`
	return mustCircuit("absdiff", src,
		stats(2, 1, 1, 0, 2, 0), []int{2, 3}, nil, PaperRowIII{})
}

// Dealer returns the "dealer" benchmark: a blackjack-style dealer decision
// circuit. Table I: critical path 4, 3 MUX, 3 COMP, 2 +, 1 -.
func Dealer() *Circuit {
	const src = `
# dealer: hit/stand decision for a card dealer.
#   total  - running hand total (the critical chain starts here)
#   act    - selected action value, via a three-deep select chain
#   win    - posted winnings, always computed
# Thresholds sit at mid range so that on random vectors each condition is
# near-equiprobable, matching the idealization the paper's Table II uses.
func dealer(score: num<8>, card: num<8>, pot: num<8>, bet: num<8>) act: num<8>, win: num<8> =
begin
    total = score + card;              # hand total
    g1    = total > 127;               # dealer must hit below the limit
    g2    = card > 127;                # high card?
    g3    = bet > 127;                 # stake limit
    soft  = pot - 10;                  # soft payout adjustment
    m2    = if g3 -> soft || bet fi;   # inner payout select
    m3    = if g2 -> m2 || bet fi;     # middle select
    act   = if g1 -> m3 || card fi;    # action select (output)
    win   = pot + bet;                 # posted winnings (output)
end
`
	return mustCircuit("dealer", src, stats(4, 3, 3, 2, 1, 0), []int{4, 5, 6, 7},
		[]PaperRowII{
			{Steps: 4, PMMuxes: 1, AreaIncr: 1.20, Mux: 2.00, Comp: 2.00, Add: 2.00, Sub: 0.50, PowerRed: 27.00},
			{Steps: 5, PMMuxes: 1, AreaIncr: 1.00, Mux: 2.00, Comp: 2.00, Add: 2.00, Sub: 0.50, PowerRed: 27.00},
			{Steps: 6, PMMuxes: 2, AreaIncr: 1.00, Mux: 2.00, Comp: 2.00, Add: 1.75, Sub: 0.25, PowerRed: 33.33},
		},
		PaperRowIII{Steps: 6, AreaOrig: 895, AreaNew: 946, PowerOrig: 46.5, PowerNew: 35.1, PowerRedPct: 24.5},
	)
}

// GCD returns the "gcd" benchmark: one unrolled step of Euclid's algorithm
// with swap. Table I: critical path 5, 6 MUX, 2 COMP, 1 -.
func GCD() *Circuit {
	const src = `
# gcd: one Euclid iteration. The max/min swap runs through selects so a
# single subtractor suffices. The subtract path hangs below the a>b guard
# (near-equiprobable on random vectors), nested inside the a!=b guard.
func gcd(a: num<8>, b: num<8>) g: num<8>, nxt: num<8>, run: bool =
begin
    neq  = a != b;                  # continue?
    gtr  = a > b;                   # which operand is larger?
    mx   = if gtr -> a || b fi;     # max(a,b)
    mn   = if gtr -> b || a fi;     # min(a,b)
    diff = mx - mn;                 # the one subtraction
    m3   = if neq -> diff || a fi;  # keep iterating with the difference
    nxt  = if gtr -> m3 || b fi;    # next value (output)
    m4   = if neq -> mn || a fi;    # next divisor candidate
    g    = if gtr -> m4 || mn fi;   # current result select (output)
    run  = neq;                     # loop-continue flag (output)
end
`
	return mustCircuit("gcd", src, stats(5, 6, 2, 0, 1, 0), []int{5, 6, 7},
		[]PaperRowII{
			{Steps: 5, PMMuxes: 1, AreaIncr: 1.00, Mux: 5.50, Comp: 2.00, Add: 0, Sub: 0.50, PowerRed: 11.76},
			{Steps: 6, PMMuxes: 1, AreaIncr: 1.00, Mux: 5.50, Comp: 2.00, Add: 0, Sub: 0.50, PowerRed: 11.76},
			{Steps: 7, PMMuxes: 2, AreaIncr: 1.05, Mux: 5.50, Comp: 2.00, Add: 0, Sub: 0.25, PowerRed: 16.18},
		},
		PaperRowIII{Steps: 7, AreaOrig: 806, AreaNew: 892, PowerOrig: 31.9, PowerNew: 28.7, PowerRedPct: 10.0},
	)
}

// Vender returns the "vender" benchmark: a vending machine controller
// computing change (two scaled multiplications on mutually exclusive
// paths) and a credit accumulator. Table I: critical path 5, 6 MUX,
// 3 COMP, 3 +, 3 -, 2 *.
func Vender() *Circuit {
	const src = `
# vender: change-making and credit accumulation. The two multiplications
# sit on opposite branches of the paid-enough select: exactly one scaled
# change computation is ever used.
func vender(amt: num<8>, price: num<8>, coin: num<8>, lim: num<8>) chg: num<8>, cr: num<8>, st: num<8>, ov: num<8> =
begin
    g1    = amt >= price;             # paid enough?
    c10   = amt * 3;                  # change scaled for dimes
    r10   = c10 - price;              # dime change remainder
    c25   = amt * 5;                  # change scaled for quarters
    r25   = c25 - price;              # quarter change remainder
    chg   = if g1 -> r10 || r25 fi;   # change select (output)

    acc   = amt + coin;               # credit accumulate (critical chain)
    g2    = acc > lim;                # over limit?
    m2    = if g2 -> acc || coin fi;  # credited amount
    acc2  = m2 + price;               # posted credit
    st    = acc2 - coin;              # settlement (output)

    g3    = coin > 10;                # big coin?
    spare = lim + coin;               # spare-change pool
    m3    = if g3 -> spare || lim fi; # pool select
    m4    = if g3 -> price || coin fi;# deposit select
    cr    = if g1 -> m4 || coin fi;   # credit select (output)
    ov    = if g2 -> m3 || lim fi;    # overflow select (output)
end
`
	return mustCircuit("vender", src, stats(5, 6, 3, 3, 3, 2), []int{5, 6, 7},
		[]PaperRowII{
			{Steps: 5, PMMuxes: 4, AreaIncr: 1.04, Mux: 4.50, Comp: 2.50, Add: 1.50, Sub: 1.00, Mul: 1.00, PowerRed: 41.67},
			{Steps: 6, PMMuxes: 4, AreaIncr: 1.00, Mux: 4.50, Comp: 2.50, Add: 1.50, Sub: 1.00, Mul: 1.00, PowerRed: 41.67},
		},
		PaperRowIII{Steps: 6, AreaOrig: 2338, AreaNew: 2283, PowerOrig: 106.2, PowerNew: 71.4, PowerRedPct: 32.8},
	)
}

// cordicAngles is the 16-entry arctangent table, atan(2^-i) in 1/256-turn
// units for the 8-bit datapath.
var cordicAngles = [16]int{32, 19, 10, 5, 3, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0}

// Cordic returns the "cordic" benchmark: 16 unrolled vector-rotation
// iterations. Table I: critical path 48, 47 MUX, 16 COMP, 43 +, 46 -.
//
// The source is generated programmatically (and fed through the real
// frontend). Per iteration a sign comparison g_i selects between +/-
// updates. The z accumulator uses a select-then-update form — the select
// picks the negated or plain angle constant and a single adder applies it —
// which makes the recurrence three control steps long and yields the
// paper's 48-step critical path (16 x 3). The final iteration's dead z
// update is dropped; the last x update uses the select-then-update form
// (completing the 48-step chain); four late y iterations and one x
// iteration use pass-through select forms. These trims land every Table I
// count exactly.
func Cordic() *Circuit {
	return mustCircuit("cordic", cordicSource(), stats(48, 47, 16, 43, 46, 0), []int{48, 52, 56},
		[]PaperRowII{
			{Steps: 48, PMMuxes: 38, AreaIncr: 1.00, Mux: 47, Comp: 16, Add: 24, Sub: 27, PowerRed: 30.16},
			{Steps: 52, PMMuxes: 46, AreaIncr: 1.17, Mux: 47, Comp: 16, Add: 22, Sub: 23, PowerRed: 34.92},
		},
		PaperRowIII{},
	)
}

// cordicSource emits the cordic benchmark as Silage text.
func cordicSource() string {
	var b []byte
	app := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	app("# cordic: 16 unrolled rotation iterations, sign-selected updates.\n")
	app("func cordic(x0: num<8>, y0: num<8>, z0: num<8>) xo: num<8>, yo: num<8>, zo: num<8> =\nbegin\n")
	for i := 0; i < 16; i++ {
		t := cordicAngles[i]
		app("    # --- iteration %d ---\n", i)
		// Sign test: z >= 0 in 8-bit two's complement is z < 128.
		app("    g%d = z%d < 128;\n", i, i)
		// Shared shifted operands (explicit so each is a single wire).
		app("    sy%d = y%d >> %d;\n", i, i, i)
		app("    sx%d = x%d >> %d;\n", i, i, i)
		// x path.
		switch {
		case i == 7: // form D: add-only pass-through select
			app("    xs%d = x%d + sy%d;\n", i, i, i)
			app("    x%d = if g%d -> xs%d || x%d fi;\n", i+1, i, i, i)
		case i == 15: // form B: select-then-update closes the 48-chain
			app("    xn%d = 0 - sy%d;\n", i, i)
			app("    xsel%d = if g%d -> xn%d || sy%d fi;\n", i, i, i, i)
			app("    x%d = x%d + xsel%d;\n", i+1, i, i)
		default: // form A
			app("    xs%d = x%d + sy%d;\n", i, i, i)
			app("    xd%d = x%d - sy%d;\n", i, i, i)
			app("    x%d = if g%d -> xd%d || xs%d fi;\n", i+1, i, i, i)
		}
		// y path.
		if i >= 12 { // form C: subtract-only pass-through select
			app("    yd%d = y%d - sx%d;\n", i, i, i)
			app("    y%d = if g%d -> yd%d || y%d fi;\n", i+1, i, i, i)
		} else { // form A
			app("    ys%d = y%d + sx%d;\n", i, i, i)
			app("    yd%d = y%d - sx%d;\n", i, i, i)
			app("    y%d = if g%d -> ys%d || yd%d fi;\n", i+1, i, i, i)
		}
		// z path: select-then-update (three steps per iteration, the
		// critical recurrence). The last iteration's z is dead.
		if i < 15 {
			app("    zn%d = 0 - %d;\n", i, t)
			app("    zsel%d = if g%d -> zn%d || %d fi;\n", i, i, i, t)
			app("    z%d = z%d + zsel%d;\n", i+1, i, i)
		}
	}
	app("    xo = x16;\n    yo = y16;\n    zo = z15;\n")
	app("end\n")
	return string(b)
}

// All returns the four paper benchmarks in Table I order.
func All() []*Circuit {
	return []*Circuit{Dealer(), GCD(), Vender(), Cordic()}
}
