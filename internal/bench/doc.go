// Package bench provides the four benchmark circuits of the paper's
// experimental section — dealer, gcd, vender and cordic — plus the |a-b|
// running example of Figures 1-2.
//
// The original Silage sources were never published; the paper gives only
// per-circuit statistics (Table I: critical path and operation counts) and
// describes the circuits by name. The behavioral descriptions here are
// reconstructions that match every Table I column exactly and carry the
// conditional structure the text implies (e.g. cordic's sign-driven
// add/subtract selection). Consequently Table II/III reproductions match
// the paper in shape (who wins, how savings grow with slack) rather than
// cell for cell; EXPERIMENTS.md reports both sets of numbers side by side.
package bench
