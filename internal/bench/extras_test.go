package bench

import (
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
)

func TestDiffEqShape(t *testing.T) {
	c := DiffEq()
	st, _ := c.Graph().ComputeStats()
	if st.Count[cdfg.ClassMul] != 6 || st.Count[cdfg.ClassAdd] != 2 ||
		st.Count[cdfg.ClassSub] != 2 || st.Count[cdfg.ClassComp] != 1 {
		t.Errorf("diffeq stats = %v", st)
	}
	if st.Count[cdfg.ClassMux] != 0 {
		t.Error("diffeq should have no conditionals")
	}
	// Functional spot check: x=10, dx=2 -> x1 = 12.
	out, err := sim.Evaluate(c.Graph(), map[string]int64{
		"x": 10, "y": 4, "u": 6, "dx": 2, "a": 100,
	}, sim.Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out["out:x1"] != 12 {
		t.Errorf("x1 = %d, want 12", out["out:x1"])
	}
	if out["out:go"] != 1 {
		t.Error("go should be 1 for x1 < a")
	}
	// u1 = u - 3xu*dx - 3y*dx (mod 256).
	t3 := (3 * 10 * 6 % 256 * 2) % 256
	t5 := (3 * 4 % 256 * 2) % 256
	want := ((6-t3)%256 + 256) % 256
	want = ((want-t5)%256 + 256) % 256
	if out["out:u1"] != int64(want) {
		t.Errorf("u1 = %d, want %d", out["out:u1"], want)
	}
}

func TestDiffEqScheduling(t *testing.T) {
	c := DiffEq()
	// Multiplier pressure: at the critical path (5) the six multiplies
	// squeeze into few steps; more budget, fewer multipliers.
	s5, res5, err := sched.MinimizeSimple(c.Graph(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s5.Validate(res5); err != nil {
		t.Error(err)
	}
	_, res8, err := sched.MinimizeSimple(c.Graph(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if res8[cdfg.ClassMul] > res5[cdfg.ClassMul] {
		t.Errorf("more budget should not need more multipliers: %d > %d",
			res8[cdfg.ClassMul], res5[cdfg.ClassMul])
	}
	// No conditionals: the PM pass is a no-op but must succeed.
	r, err := core.Schedule(c.Graph(), core.Config{Budget: 6, Weights: power.Weights})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumManaged() != 0 || len(r.Guards) != 0 {
		t.Error("diffeq has nothing to manage")
	}
}

func TestEWFShape(t *testing.T) {
	c := EWF()
	st, _ := c.Graph().ComputeStats()
	if st.Count[cdfg.ClassAdd] != 26 || st.Count[cdfg.ClassMul] != 8 {
		t.Errorf("ewf stats = %v, want 26 adds and 8 muls", st)
	}
	if st.Count[cdfg.ClassMux] != 0 {
		t.Error("ewf should have no conditionals")
	}
}

func TestEWFSchedulingStress(t *testing.T) {
	c := EWF()
	cp := c.PaperStats.CriticalPath
	// The scheduler handles the filter across a budget sweep with
	// sensible resource trends.
	prevTotal := 1 << 30
	for _, budget := range []int{cp, cp + 3, cp + 6} {
		s, res, err := sched.MinimizeSimple(c.Graph(), budget)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if err := s.Validate(res); err != nil {
			t.Fatal(err)
		}
		if res.Total() > prevTotal {
			t.Errorf("budget %d: units %d grew from %d", budget, res.Total(), prevTotal)
		}
		prevTotal = res.Total()
	}
	// Force-directed schedules it too.
	fds, err := sched.ForceDirected(c.Graph(), cp+3)
	if err != nil {
		t.Fatal(err)
	}
	if err := fds.Validate(nil); err != nil {
		t.Error(err)
	}
}

func TestDecodePMRich(t *testing.T) {
	c := Decode()
	st, _ := c.Graph().ComputeStats()
	if st.Count[cdfg.ClassMux] != 3 {
		t.Fatalf("decode muxes = %d, want 3", st.Count[cdfg.ClassMux])
	}
	r, err := core.Schedule(c.Graph(), core.Config{Budget: 5, Weights: power.Weights})
	if err != nil {
		t.Fatal(err)
	}
	if r.NumManaged() < 2 {
		t.Errorf("decode managed = %d, want >= 2", r.NumManaged())
	}
	act, _ := power.AnalyzeExact(r.Graph, r.Guards)
	ops := act.ExpectedOps(r.Graph)
	// The multiply is used only on the !isalu & islog path: under
	// equiprobable selects it executes well below 1.0.
	if ops[cdfg.ClassMul] >= 1.0 {
		t.Errorf("E[mul] = %.2f, want < 1.0", ops[cdfg.ClassMul])
	}
	// Semantics across representative opcodes.
	for _, op := range []int64{5, 40, 70, 120, 200} {
		in := map[string]int64{"op": op, "a": 17, "b": 5}
		want, err := sim.Evaluate(c.Graph(), in, sim.Options{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.ExecuteScheduled(r.Schedule, r.Guards, in, sim.Options{Width: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got.Outputs["out:r"] != want["out:r"] {
			t.Errorf("op %d: %d != %d", op, got.Outputs["out:r"], want["out:r"])
		}
	}
}

func TestExtrasListed(t *testing.T) {
	ex := Extras()
	if len(ex) != 3 {
		t.Fatalf("extras = %d", len(ex))
	}
	for _, c := range ex {
		if c.Design == nil || len(c.Budgets) == 0 {
			t.Errorf("%s incomplete", c.Name)
		}
		if err := c.Graph().Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}
