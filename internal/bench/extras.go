package bench

import (
	"fmt"
	"strings"

	"repro/internal/silage"
)

// Extra circuits beyond the paper's four: the classic high-level synthesis
// benchmarks (diffeq, elliptic wave filter) that stress the scheduler and
// allocator, and a conditional-rich decode block that stresses the power
// management pass. They demonstrate generality; no paper numbers attach to
// them.

// DiffEq returns the classic Paulin differential-equation benchmark body
// (one iteration of y” + 3xy' + 3y = 0): 6 multiplications, 2 additions,
// 2 subtractions, 1 comparison, no conditionals.
func DiffEq() *Circuit {
	const src = `
# diffeq: one iteration of the HAL benchmark (Paulin & Knight).
func diffeq(x: num<8>, y: num<8>, u: num<8>, dx: num<8>, a: num<8>) x1: num<8>, y1: num<8>, u1: num<8>, go: bool =
begin
    t1 = 3 * x;       # 3x
    t2 = t1 * u;      # 3xu
    t3 = t2 * dx;     # 3xu*dx
    t4 = 3 * y;       # 3y
    t5 = t4 * dx;     # 3y*dx
    t6 = u * dx;      # u*dx
    s1 = u - t3;
    u1 = s1 - t5;     # u - 3xu*dx - 3y*dx
    y1 = y + t6;      # y + u*dx
    x1 = x + dx;      # x + dx
    go = x1 < a;      # loop-continue condition
end
`
	// Critical path 5: t1 -> t2 -> t3 -> s1 -> u1.
	return mustCircuit("diffeq", src, stats(5, 0, 1, 2, 2, 6), []int{5, 6, 7, 8}, nil, PaperRowIII{})
}

// EWF returns a fifth-order elliptic wave filter in the standard 26-add /
// 8-multiply dataflow shape — the classic scheduling stress test. It has
// no conditionals: the power management pass must recognize there is
// nothing to do (an important no-op path).
func EWF() *Circuit {
	src := ewfSource()
	c := mustCircuitLoose("ewf", src)
	return c
}

// ewfSource emits the filter. The structure follows the usual published
// dataflow: cascaded add chains with multiplier taps feeding back.
func ewfSource() string {
	var b strings.Builder
	b.WriteString("# ewf: fifth-order elliptic wave filter (standard 26+/8* shape).\n")
	b.WriteString("func ewf(inp: num<8>, sv2: num<8>, sv13: num<8>, sv18: num<8>, sv26: num<8>, sv33: num<8>, sv38: num<8>, sv39: num<8>) out: num<8>, nsv2: num<8>, nsv13: num<8>, nsv18: num<8>, nsv26: num<8>, nsv33: num<8>, nsv38: num<8>, nsv39: num<8> =\nbegin\n")
	lines := []string{
		"a1 = inp + sv2;",
		"a2 = a1 + sv33;",
		"a3 = a2 + sv39;",
		"m1 = a3 * 3;",
		"a4 = m1 + sv13;",
		"a5 = a4 + a2;",
		"m2 = a5 * 5;",
		"a6 = m2 + a4;",
		"a7 = a6 + sv18;",
		"a8 = a7 + a5;",
		"m3 = a8 * 3;",
		"a9 = m3 + a6;",
		"a10 = a9 + sv26;",
		"a11 = a10 + a7;",
		"m4 = a11 * 5;",
		"a12 = m4 + a9;",
		"a13 = a12 + sv38;",
		"a14 = a13 + a10;",
		"m5 = a14 * 3;",
		"a15 = m5 + a12;",
		"a16 = a15 + a13;",
		"m6 = a16 * 5;",
		"a17 = m6 + a15;",
		"a18 = a17 + a14;",
		"m7 = a18 * 3;",
		"a19 = m7 + a17;",
		"a20 = a19 + a16;",
		"m8 = a20 * 5;",
		"a21 = m8 + a19;",
		"a22 = a21 + a18;",
		"a23 = a22 + a20;",
		"a24 = a23 + a21;",
		"a25 = a24 + a22;",
		"a26 = a25 + a23;",
	}
	for _, l := range lines {
		fmt.Fprintf(&b, "    %s\n", l)
	}
	b.WriteString("    out = a26;\n")
	b.WriteString("    nsv2 = a24;\n    nsv13 = a25;\n    nsv18 = a21;\n    nsv26 = a19;\n")
	b.WriteString("    nsv33 = a17;\n    nsv38 = a15;\n    nsv39 = a12;\n")
	b.WriteString("end\n")
	return b.String()
}

// Decode returns a conditional-rich instruction-decode-style block: a
// three-level select tree over computed values, exercising nested gating
// and mux reordering.
func Decode() *Circuit {
	const src = `
# decode: three-level select tree over computed function units.
func decode(op: num<8>, a: num<8>, b: num<8>) r: num<8> =
begin
    isalu  = op < 64;
    isadd  = op < 32;
    islog  = op < 96;
    sum    = a + b;
    dif    = a - b;
    prd    = a * b;
    shl2   = (a << 2) + 0;
    alures = if isadd -> sum || dif fi;
    logres = if islog -> prd || shl2 fi;
    r      = if isalu -> alures || logres fi;
end
`
	return mustCircuit("decode", src, stats(3, 3, 3, 2, 1, 1), []int{3, 4, 5, 6}, nil, PaperRowIII{})
}

// mustCompile compiles a source, panicking with the circuit name on error.
func mustCompile(name, src string) *silage.Design {
	d, err := silage.Compile(src)
	if err != nil {
		panic(fmt.Sprintf("bench: %s does not compile: %v", name, err))
	}
	return d
}

// mustCircuitLoose compiles a circuit without a Table I expectation (for
// the extras whose statistics are not pinned by the paper).
func mustCircuitLoose(name, src string) *Circuit {
	d := mustCompile(name, src)
	st, err := d.Graph.ComputeStats()
	if err != nil {
		panic(fmt.Sprintf("bench: %s stats: %v", name, err))
	}
	cp := st.CriticalPath
	return &Circuit{
		Name:       name,
		Source:     src,
		Design:     d,
		PaperStats: st,
		Budgets:    []int{cp, cp + 2, cp + 4},
	}
}

// Extras returns the non-paper circuits.
func Extras() []*Circuit {
	return []*Circuit{DiffEq(), EWF(), Decode()}
}
