package bench

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/power"
	"repro/internal/sim"
)

// TestTableIStatisticsExact asserts that every reconstructed benchmark
// matches the paper's Table I row exactly.
func TestTableIStatisticsExact(t *testing.T) {
	want := map[string]tableIRow{
		"dealer": {cp: 4, mux: 3, comp: 3, add: 2, sub: 1, mul: 0},
		"gcd":    {cp: 5, mux: 6, comp: 2, add: 0, sub: 1, mul: 0},
		"vender": {cp: 5, mux: 6, comp: 3, add: 3, sub: 3, mul: 2},
		"cordic": {cp: 48, mux: 47, comp: 16, add: 43, sub: 46, mul: 0},
	}
	for _, c := range All() {
		st, err := c.Graph().ComputeStats()
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if got := projectTableI(st); got != want[c.Name] {
			t.Errorf("%s: stats %+v, want %+v", c.Name, got, want[c.Name])
		}
	}
}

func TestAbsDiffStats(t *testing.T) {
	c := AbsDiff()
	st, _ := c.Graph().ComputeStats()
	if st.CriticalPath != 2 || st.Count[cdfg.ClassSub] != 2 {
		t.Errorf("absdiff stats: %v", st)
	}
}

func TestAllCircuitsValidate(t *testing.T) {
	for _, c := range append(All(), AbsDiff()) {
		if err := c.Graph().Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.Design.Width != 8 {
			t.Errorf("%s: width %d, want 8", c.Name, c.Design.Width)
		}
	}
}

func TestCircuitsSimulateSensibly(t *testing.T) {
	// dealer: act selects per the comparisons; win = pot + bet.
	d := Dealer()
	out, err := sim.Evaluate(d.Graph(), map[string]int64{
		"score": 10, "card": 9, "pot": 30, "bet": 5,
	}, sim.Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out["out:win"] != 35 {
		t.Errorf("dealer win = %d, want 35", out["out:win"])
	}
	// total=19 <= 127, so the action select falls through to card.
	if out["out:act"] != 9 {
		t.Errorf("dealer act = %d, want 9", out["out:act"])
	}
	// And the hit path: total over the limit routes the middle select.
	out2, err := sim.Evaluate(d.Graph(), map[string]int64{
		"score": 100, "card": 60, "pot": 30, "bet": 5,
	}, sim.Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	// total=160>127, card=60<=127 -> m3 = bet = 5.
	if out2["out:act"] != 5 {
		t.Errorf("dealer act(hit) = %d, want 5", out2["out:act"])
	}

	// gcd: one Euclid step of (12, 8) -> diff 4, nxt = 4, g = min = 8.
	g := GCD()
	out, err = sim.Evaluate(g.Graph(), map[string]int64{"a": 12, "b": 8}, sim.Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out["out:run"] != 1 {
		t.Error("gcd run flag should be 1 for a != b")
	}
	if out["out:nxt"] != 4 {
		t.Errorf("gcd nxt = %d, want diff 4", out["out:nxt"])
	}
	// Termination case: a == b.
	out, err = sim.Evaluate(g.Graph(), map[string]int64{"a": 7, "b": 7}, sim.Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out["out:run"] != 0 {
		t.Error("gcd run flag should be 0 for a == b")
	}

	// vender: amt >= price picks the dime-scaled change.
	v := Vender()
	out, err = sim.Evaluate(v.Graph(), map[string]int64{
		"amt": 20, "price": 15, "coin": 5, "lim": 100,
	}, sim.Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out["out:chg"] != (20*3-15)&255 {
		t.Errorf("vender chg = %d", out["out:chg"])
	}

	// cordic: rotating (x0,y0)=(100,0) by z0=32 (45 degrees in 1/256
	// turns) should move amplitude into y. With the coarse 8-bit angle
	// table we just require the outputs to be computable and z driven
	// toward zero.
	co := Cordic()
	out, err = sim.Evaluate(co.Graph(), map[string]int64{"x0": 100, "y0": 0, "z0": 32}, sim.Options{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out["out:zo"]; !ok {
		t.Fatal("cordic missing z output")
	}
}

// TestCordicSourceShape checks the generated source's structural
// commitments: 16 iterations, select-then-update z recurrence.
func TestCordicSourceShape(t *testing.T) {
	src := cordicSource()
	if n := strings.Count(src, "# --- iteration"); n != 16 {
		t.Errorf("iterations = %d, want 16", n)
	}
	if n := strings.Count(src, "zsel"); n < 15 {
		t.Errorf("zsel occurrences = %d, want >= 15", n)
	}
	if !strings.Contains(src, "xo = x16") {
		t.Error("missing final x output")
	}
}

// TestPMFeasibilityAcrossBudgets sweeps the Table II budgets through the
// concurrent sweep engine and checks the qualitative claims: the number of
// managed muxes and the datapath power reduction are non-decreasing in the
// budget, and savings fall in the paper's reported band (roughly 10-45%)
// at the largest budget.
func TestPMFeasibilityAcrossBudgets(t *testing.T) {
	for _, c := range All() {
		if c.Name == "cordic" && testing.Short() {
			continue
		}
		cfgs := make([]core.Config, len(c.Budgets))
		for i, budget := range c.Budgets {
			cfgs[i] = core.Config{Budget: budget, Weights: power.Weights}
		}
		ctxs, err := flow.RunAll(context.Background(), c.Graph(), c.Design.Width, cfgs, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		prevManaged := -1
		prevRed := -1.0
		for i, fc := range ctxs {
			budget := c.Budgets[i]
			if fc.Err != nil {
				t.Fatalf("%s@%d: %v", c.Name, budget, fc.Err)
			}
			red := power.Reduction(fc.PM.Graph, fc.Activity, power.Weights)
			if fc.PM.NumManaged() < prevManaged {
				t.Errorf("%s@%d: managed %d decreased (prev %d)", c.Name, budget, fc.PM.NumManaged(), prevManaged)
			}
			if red < prevRed-1e-9 {
				t.Errorf("%s@%d: reduction %.3f decreased (prev %.3f)", c.Name, budget, red, prevRed)
			}
			prevManaged, prevRed = fc.PM.NumManaged(), red
		}
		if prevRed < 0.10 || prevRed > 0.50 {
			t.Errorf("%s: final reduction %.3f outside the paper's band", c.Name, prevRed)
		}
	}
}

// TestPMSemanticsPreservedOnBenchmarks verifies output equivalence of the
// gated schedules on a spread of inputs for every benchmark.
func TestPMSemanticsPreservedOnBenchmarks(t *testing.T) {
	inputsFor := func(g *cdfg.Graph, seed int64) map[string]int64 {
		in := make(map[string]int64)
		v := seed
		for _, id := range g.Inputs() {
			v = (v*1103515245 + 12345) & 255
			in[g.Node(id).Name] = v
		}
		return in
	}
	for _, c := range All() {
		budget := c.Budgets[len(c.Budgets)-1]
		r, err := core.Schedule(c.Graph(), core.Config{Budget: budget, Weights: power.Weights})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for seed := int64(0); seed < 25; seed++ {
			in := inputsFor(c.Graph(), seed)
			ref, err := sim.Evaluate(c.Graph(), in, sim.Options{Width: 8})
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			got, err := sim.ExecuteScheduled(r.Schedule, r.Guards, in, sim.Options{Width: 8})
			if err != nil {
				t.Fatalf("%s seed %d: %v", c.Name, seed, err)
			}
			for k, v := range ref {
				if got.Outputs[k] != v {
					t.Errorf("%s seed %d: output %s = %d, want %d", c.Name, seed, k, got.Outputs[k], v)
				}
			}
		}
	}
}

// TestDealerStaircase pins the dealer's characteristic Table II staircase
// in this reconstruction: no PM at the critical path, then one managed mux,
// then the fully gated 27.08% row (the paper's characteristic dealer row),
// then two managed muxes.
func TestDealerStaircase(t *testing.T) {
	c := Dealer()
	type row struct {
		managed int
		redPct  float64
	}
	want := map[int]row{
		4: {0, 0},
		5: {1, 16.67},
		6: {1, 27.08},
		7: {2, 35.42},
	}
	for budget, w := range want {
		r, err := core.Schedule(c.Graph(), core.Config{Budget: budget, Weights: power.Weights})
		if err != nil {
			t.Fatalf("@%d: %v", budget, err)
		}
		act, exact := power.AnalyzeExact(r.Graph, r.Guards)
		if !exact {
			t.Fatal("dealer should analyze exactly")
		}
		red := power.Reduction(r.Graph, act, power.Weights) * 100
		if r.NumManaged() != w.managed {
			t.Errorf("@%d: managed = %d, want %d", budget, r.NumManaged(), w.managed)
		}
		if red < w.redPct-0.5 || red > w.redPct+0.5 {
			t.Errorf("@%d: reduction = %.2f%%, want ~%.2f%%", budget, red, w.redPct)
		}
	}
}

// TestVenderMultipliersHalved: the headline vender property — the two
// multiplications sit on exclusive branches, so the expected multiplier
// executions drop to 1.0 of 2 (paper Table II).
func TestVenderMultipliersHalved(t *testing.T) {
	c := Vender()
	r, err := core.Schedule(c.Graph(), core.Config{Budget: 5, Weights: power.Weights})
	if err != nil {
		t.Fatal(err)
	}
	act, _ := power.AnalyzeExact(r.Graph, r.Guards)
	ops := act.ExpectedOps(r.Graph)
	if ops[cdfg.ClassMul] != 1.0 {
		t.Errorf("expected multiplier executions = %.2f, want 1.00", ops[cdfg.ClassMul])
	}
}

// TestCordicComparatorsAlwaysRun: every cordic comparator produces a
// controlling signal and must never be gated (paper: COMP stays 16.00).
func TestCordicComparatorsAlwaysRun(t *testing.T) {
	if testing.Short() {
		t.Skip("cordic analysis in short mode")
	}
	c := Cordic()
	r, err := core.Schedule(c.Graph(), core.Config{Budget: 48, Weights: power.Weights})
	if err != nil {
		t.Fatal(err)
	}
	act, _ := power.AnalyzeExact(r.Graph, r.Guards)
	ops := act.ExpectedOps(r.Graph)
	if ops[cdfg.ClassComp] != 16 {
		t.Errorf("expected comparator executions = %.2f, want 16", ops[cdfg.ClassComp])
	}
	if ops[cdfg.ClassMux] != 47 {
		t.Errorf("expected mux executions = %.2f, want 47 (muxes themselves always run)", ops[cdfg.ClassMux])
	}
	// Adds and subs must drop below their totals.
	if ops[cdfg.ClassAdd] >= 43 || ops[cdfg.ClassSub] >= 46 {
		t.Errorf("adds/subs not reduced: %v", ops)
	}
}

func TestPaperDataPresent(t *testing.T) {
	for _, c := range All() {
		if len(c.PaperII) == 0 {
			t.Errorf("%s: missing paper Table II rows", c.Name)
		}
		if len(c.Budgets) == 0 {
			t.Errorf("%s: missing budgets", c.Name)
		}
		if c.Source == "" || c.Design == nil {
			t.Errorf("%s: incomplete circuit", c.Name)
		}
	}
	if Dealer().PaperIII.Steps != 6 || GCD().PaperIII.Steps != 7 || Vender().PaperIII.Steps != 6 {
		t.Error("paper Table III metadata wrong")
	}
	if Cordic().PaperIII.Steps != 0 {
		t.Error("cordic should have no Table III row")
	}
}
