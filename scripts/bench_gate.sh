#!/usr/bin/env sh
# bench_gate.sh — the sweep-performance regression gate, run by CI.
#
# Measures a fresh design-space sweep over the paper's circuits with
# cmd/pmbench and compares each circuit's best ns/config against the
# committed BENCH_sweep.json. The threshold (default 3x) absorbs the
# machine-to-machine noise between the baseline host and the CI runner;
# only a genuine algorithmic regression — a reintroduced quadratic pass,
# lost memoization, a dead cache — moves ns/config by that much.
#
# Usage: scripts/bench_gate.sh [baseline.json] [threshold]
set -eu

cd "$(dirname "$0")/.."

baseline="${1:-BENCH_sweep.json}"
threshold="${2:-3}"

if [ ! -f "$baseline" ]; then
    echo "bench_gate: baseline $baseline not found" >&2
    exit 1
fi

# The fresh measurement goes to a scratch file: the gate must never
# overwrite the committed baseline (that happens deliberately, by running
# `go run ./cmd/pmbench` on the reference machine).
tmp="$(mktemp /tmp/bench_gate.XXXXXX.json)"
trap 'rm -f "$tmp"' EXIT

go run ./cmd/pmbench -out "$tmp" -workers 1,0 \
    -gate "$baseline" -gate-threshold "$threshold"
