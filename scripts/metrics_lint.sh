#!/usr/bin/env sh
# metrics_lint.sh — the /metrics exposition gate, run by CI.
#
# Starts a real pmsynthd, drives one synthesize and one sweep through it
# (so counters and every latency histogram hold live data), scrapes
# /metrics, and validates the exposition:
#
#  1. Every sample belongs to a family that declared # HELP and # TYPE.
#  2. No series (name + label set) appears twice.
#  3. Histogram buckets are cumulative: within each series the bucket
#     values never decrease, the le="+Inf" bucket equals _count, and
#     every histogram series has _sum and _count lines.
#
# Pure POSIX sh + awk + curl, no dependencies.
set -eu

cd "$(dirname "$0")/.."

ADDR=127.0.0.1:8365
BIN=$(mktemp -d)/pmsynthd
OUT=$(mktemp)
trap 'kill $SRV 2>/dev/null || true; rm -rf "$(dirname "$BIN")" "$OUT"' EXIT

go build -o "$BIN" ./cmd/pmsynthd
"$BIN" -addr "$ADDR" -log-level warn &
SRV=$!

for i in $(seq 1 50); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done
curl -fsS "http://$ADDR/healthz" >/dev/null

# One synthesize and one sweep, so request, queue, pass and point
# histograms all carry observations.
src='func inc(a: num<8>) out: num<8> = begin out = a + 1; end'
curl -fsS -X POST "http://$ADDR/v1/synthesize" \
    -H 'Content-Type: application/json' \
    -d "{\"source\":\"$src\",\"options\":{\"budget\":1}}" >/dev/null
job=$(curl -fsS -X POST "http://$ADDR/v1/sweep" \
    -H 'Content-Type: application/json' \
    -d "{\"source\":\"$src\",\"spec\":{\"budgetMin\":1,\"budgetMax\":2}}" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
state=""
for i in $(seq 1 100); do
    state=$(curl -fsS "http://$ADDR/v1/jobs/$job" \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1)
    case "$state" in succeeded|failed|canceled) break ;; esac
    sleep 0.1
done
if [ "$state" != succeeded ]; then
    echo "metrics-lint: sweep job $job ended in '$state', want succeeded" >&2
    exit 1
fi

curl -fsS "http://$ADDR/metrics" >"$OUT"
kill $SRV
wait $SRV 2>/dev/null || true

awk '
function fail(msg) { print "metrics-lint: " msg > "/dev/stderr"; bad = 1 }
# family(): the metric family a sample line belongs to — the name with
# labels stripped, and for histogram samples the _bucket/_sum/_count
# suffix stripped when the prefix declared itself a histogram.
function family(name,  base) {
    if (name in type) return name
    base = name
    sub(/_(bucket|sum|count)$/, "", base)
    if ((base in type) && type[base] == "histogram") return base
    return name
}
/^# HELP / {
    if ($3 in help) fail("duplicate HELP for " $3)
    help[$3] = 1; next
}
/^# TYPE / {
    if ($3 in type) fail("duplicate TYPE for " $3)
    type[$3] = $4; next
}
/^#/ { next }
NF == 0 { next }
{
    # Label values may contain spaces (route="GET /metrics"), so split
    # at the LAST space: series before it, sample value after it.
    i = match($0, / [^ ]*$/)
    series = substr($0, 1, i - 1)
    value = substr($0, i + 1)
    name = series; sub(/\{.*/, "", name)
    fam = family(name)
    if (!(fam in type)) fail("sample " series " has no # TYPE")
    if (!(fam in help)) fail("sample " series " has no # HELP")
    if (series in seen) fail("duplicate series " series)
    seen[series] = 1
    if (name ~ /_bucket$/ && type[fam] == "histogram") {
        # Key the series without its le label (le renders last);
        # buckets render in ascending le order ending at +Inf, so
        # cumulative counts must never decrease in file order.
        key = series
        sub(/(\{|,)le="[^"]*"\}$/, "", key)
        if (series ~ /,le=/) key = key "}"
        if ((key in last) && value + 0 < last[key] + 0)
            fail("histogram " key " bucket counts decrease: " last[key] " -> " value)
        last[key] = value
        if (series ~ /le="\+Inf"/) inf[key] = value
        nbuckets[key]++
    }
    if (name ~ /_count$/ && type[fam] == "histogram") cnt[series] = value
    if (name ~ /_sum$/ && type[fam] == "histogram") sum[series] = value
}
END {
    for (key in nbuckets) {
        if (!(key in inf)) fail("histogram " key " has no +Inf bucket")
        ckey = key; sub(/_bucket/, "_count", ckey)
        if (!(ckey in cnt)) fail("histogram " key " has no _count series")
        else if (inf[key] + 0 != cnt[ckey] + 0)
            fail("histogram " key " +Inf bucket " inf[key] " != count " cnt[ckey])
        skey = key; sub(/_bucket/, "_sum", skey)
        if (!(skey in sum)) fail("histogram " key " has no _sum series")
    }
    if (bad) { print "metrics-lint: FAILED" > "/dev/stderr"; exit 1 }
}
' "$OUT"

# The gate also pins the legacy series contract: a daemon that served a
# synthesize and a sweep must still expose the original counters.
for series in pmsynthd_cache_misses pmsynthd_design_cache_misses \
    pmsynthd_jobs_completed pmsynthd_sweep_requests pmsynthd_uptime_seconds; do
    grep -q "^$series " "$OUT" || {
        echo "metrics-lint: legacy series $series missing" >&2
        exit 1
    }
done

# The cluster series are emitted unconditionally — zeros on a
# single-node daemon like this one — so dashboards and alerts never see
# a family appear out of nowhere when -peers is first configured.
for series in pmsynthd_cluster_enabled pmsynthd_cluster_nodes \
    pmsynthd_cluster_proxied_submits pmsynthd_cluster_fallbacks \
    pmsynthd_cluster_forwarded pmsynthd_cluster_claims_acquired \
    pmsynthd_cluster_claims_stolen; do
    grep -q "^$series " "$OUT" || {
        echo "metrics-lint: cluster series $series missing" >&2
        exit 1
    }
done

echo "metrics-lint: ok ($(grep -c '^pmsynthd' "$OUT") sample lines)"
