#!/usr/bin/env sh
# cluster_smoke.sh — 3-node cluster fault-injection smoke, run by CI.
#
# Boots three race-instrumented pmsynthd nodes (the race-built binary
# aborts the process on any detected data race) as one static cluster
# over a shared store directory, drives mixed sweep/synthesize traffic
# at all three, crash-kills one node mid-run, and requires the
# survivors to absorb the load: health stays green, a sweep submitted
# after the kill runs to completion through a survivor, and the
# pmsynthd_cluster_* series show the routing actually happened — with
# # HELP and # TYPE on every cluster family.
#
# Pure POSIX sh + curl, no dependencies.
set -eu

cd "$(dirname "$0")/.."

A=127.0.0.1:8366
B=127.0.0.1:8367
C=127.0.0.1:8368
PEERS="http://$A,http://$B,http://$C"
DIR=$(mktemp -d)
BIN="$DIR/pmsynthd"
trap 'kill $P1 $P2 $P3 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -race -o "$BIN" ./cmd/pmsynthd

start_node() {
    "$BIN" -addr "$1" -self-url "http://$1" -peers "$PEERS" \
        -store-dir "$DIR/store" -job-workers 2 -log-level warn &
}
start_node "$A"; P1=$!
start_node "$B"; P2=$!
start_node "$C"; P3=$!

wait_health() {
    for i in $(seq 1 50); do
        curl -fsS "http://$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "cluster-smoke: node $1 never became healthy" >&2
    return 1
}
wait_health "$A"
wait_health "$B"
wait_health "$C"

gcd='func gcd(a: num<8>, b: num<8>) g: num<8>, run: bool = begin neq = a != b; gtr = a > b; mx = if gtr -> a || b fi; mn = if gtr -> b || a fi; g = mx - mn; run = neq; end'

# submit_sweep NODE BUDGETMAX — fire-and-forget; failures are tolerated
# here because traffic keeps flowing at a node we are about to kill.
submit_sweep() {
    curl -sS -o /dev/null -X POST "http://$1/v1/sweep" \
        -H 'Content-Type: application/json' \
        -d "{\"source\":\"$gcd\",\"spec\":{\"budgetMin\":3,\"budgetMax\":$2}}" || true
}

# Phase 1: concurrent mixed traffic at all three nodes. Distinct specs
# land on distinct owners, so submissions proxy between nodes; repeated
# specs exercise the dedup and warm paths.
pids=""
for n in $A $B $C; do
    (
        i=0
        while [ $i -lt 10 ]; do
            i=$((i + 1))
            submit_sweep "$n" $((4 + i % 3))
            curl -sS -o /dev/null -X POST "http://$n/v1/synthesize" \
                -H 'Content-Type: application/json' \
                -d "{\"source\":\"$gcd\",\"options\":{\"budget\":$((3 + i % 2))}}" || true
        done
    ) &
    pids="$pids $!"
done
wait $pids

# Crash-kill one node mid-run, then keep the load coming: every spec
# this phase submits that the dead node owns must fall back to local
# execution on a survivor.
kill -9 "$P3"
pids=""
for n in $A $B; do
    (
        i=0
        while [ $i -lt 10 ]; do
            i=$((i + 1))
            submit_sweep "$n" $((4 + i % 4))
        done
    ) &
    pids="$pids $!"
done
wait $pids

# Survivors drain: a fresh sweep submitted after the kill must complete,
# wherever its fingerprint is owned — resolved transparently via node A.
job=$(curl -fsS -X POST "http://$A/v1/sweep" \
    -H 'Content-Type: application/json' \
    -d "{\"source\":\"$gcd\",\"spec\":{\"budgetMin\":3,\"budgetMax\":8}}" \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
state=""
for i in $(seq 1 100); do
    state=$(curl -fsS "http://$A/v1/jobs/$job" 2>/dev/null \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n 1)
    case "$state" in succeeded|failed|canceled) break ;; esac
    sleep 0.1
done
if [ "$state" != succeeded ]; then
    echo "cluster-smoke: post-kill sweep $job ended in '$state', want succeeded" >&2
    exit 1
fi

curl -fsS "http://$A/healthz" >/dev/null
curl -fsS "http://$B/healthz" >/dev/null

# The cluster exposition: every pmsynthd_cluster_* family declared with
# HELP and TYPE and carrying a sample, the gauges reflecting the static
# 3-node membership (the dead peer stays configured — this is a static
# cluster, not a membership protocol).
OUT="$DIR/metrics"
curl -fsS "http://$A/metrics" >"$OUT"
for fam in pmsynthd_cluster_enabled pmsynthd_cluster_nodes \
    pmsynthd_cluster_proxied_submits pmsynthd_cluster_proxied_jobs \
    pmsynthd_cluster_fallbacks pmsynthd_cluster_forwarded \
    pmsynthd_cluster_claims_acquired pmsynthd_cluster_claims_lost \
    pmsynthd_cluster_claims_stolen pmsynthd_cluster_claims_released; do
    grep -q "^# HELP $fam " "$OUT" || { echo "cluster-smoke: $fam missing HELP" >&2; exit 1; }
    grep -q "^# TYPE $fam " "$OUT" || { echo "cluster-smoke: $fam missing TYPE" >&2; exit 1; }
    grep -q "^$fam " "$OUT" || { echo "cluster-smoke: $fam missing sample" >&2; exit 1; }
done
grep -q '^pmsynthd_cluster_enabled 1$' "$OUT" || {
    echo "cluster-smoke: node A does not report cluster_enabled 1" >&2; exit 1
}
grep -q '^pmsynthd_cluster_nodes 3$' "$OUT" || {
    echo "cluster-smoke: node A does not report cluster_nodes 3" >&2; exit 1
}

# Routing must have actually happened somewhere: across the two
# survivors, proxied or forwarded submissions plus dead-peer fallbacks
# are all expected to be nonzero in aggregate.
total=$(
    for n in $A $B; do
        curl -fsS "http://$n/metrics" \
            | awk '/^pmsynthd_cluster_(proxied_submits|forwarded|fallbacks) /{s += $2} END {print s + 0}'
    done | awk '{s += $1} END {print s + 0}'
)
if [ "$total" -lt 1 ]; then
    echo "cluster-smoke: no cluster routing observed (proxied+forwarded+fallbacks = $total)" >&2
    exit 1
fi

kill "$P1" "$P2"
wait "$P1" 2>/dev/null || true
wait "$P2" 2>/dev/null || true
echo "cluster-smoke: ok (post-kill sweep $job succeeded; routing events: $total)"
