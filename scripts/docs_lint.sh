#!/usr/bin/env sh
# docs_lint.sh — the documentation gate, run by CI.
#
#  1. Every Go package (every directory holding non-test .go files) must
#     have a package comment ("// Package ..." on some non-test file —
#     by convention its doc.go).
#  2. Relative markdown links in the top-level docs must resolve to
#     files that exist.
#
# Pure POSIX sh + grep, no dependencies, so it runs anywhere the repo
# builds.
set -eu

cd "$(dirname "$0")/.."
fail=0

# --- 1. Package comment check -----------------------------------------
# Library packages need a "// Package ..." comment (by convention in
# doc.go). main packages (cmd/*, examples/*) need a doc comment block
# directly above their "package main" line in some file.
has_main_doc() {
    for f in "$1"/*.go; do
        awk 'prev ~ /^\/\// && $0 == "package main" { found = 1 }
             { prev = $0 } END { exit !found }' "$f" && return 0
    done
    return 1
}
for dir in $(find . -name '*.go' ! -name '*_test.go' ! -path './.git/*' \
    -exec dirname {} \; | sort -u); do
    if grep -h '^package main$' "$dir"/*.go >/dev/null 2>&1; then
        if ! has_main_doc "$dir"; then
            echo "docs-lint: command in $dir has no doc comment above 'package main'" >&2
            fail=1
        fi
    elif ! grep -l '^// Package ' "$dir"/*.go >/dev/null 2>&1; then
        echo "docs-lint: package in $dir has no package comment (want a doc.go with '// Package ...')" >&2
        fail=1
    fi
done

# --- 2. Markdown link check -------------------------------------------
# Extract [text](target) targets; verify relative file targets exist.
# External links (http/https/mailto) and pure #anchors are skipped.
for md in README.md DESIGN.md EXPERIMENTS.md; do
    [ -f "$md" ] || { echo "docs-lint: $md missing" >&2; fail=1; continue; }
    targets=$(grep -o '\[[^]]*\]([^)]*)' "$md" \
        | sed 's/.*](\([^)]*\))/\1/' \
        | grep -v '^https\{0,1\}:' | grep -v '^mailto:' | grep -v '^#' || true)
    for t in $targets; do
        path=${t%%#*}   # strip anchors
        [ -n "$path" ] || continue
        if [ ! -e "$path" ]; then
            echo "docs-lint: $md links to missing file '$path'" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "docs-lint: FAILED" >&2
    exit 1
fi
echo "docs-lint: ok"
